//! Property tests for the optimization substrate.
//!
//! The centerpiece: BiGreedy (the paper's `O(|A| log |A|)` special-purpose
//! algorithm) must agree with the from-scratch simplex solver on randomized
//! instances of the structured LP — same feasibility verdict, same optimal
//! cost.

use expred_solver::bigreedy::GreedyProblem;
use expred_solver::knapsack::{greedy_min_knapsack, solve_min_knapsack, Item};
use expred_solver::lp::{Constraint, LinearProgram, LpOutcome, Relation};
use expred_solver::perfect_info::{Decision, PerfectGroup, PerfectInfoInstance};
use proptest::prelude::*;

/// Strategy: a random structured instance in the paper's parameter ranges.
fn greedy_instance() -> impl Strategy<Value = GreedyProblem> {
    let group = (10usize..2000, 0.01f64..0.99);
    (
        prop::collection::vec(group, 2..8),
        0.05f64..0.95, // alpha
        0.05f64..0.95, // beta (used to derive a recall target)
        0.0f64..0.3,   // relative slack for the precision target
    )
        .prop_map(|(raw, alpha, beta, prec_frac)| {
            let sizes: Vec<f64> = raw.iter().map(|&(t, _)| t as f64).collect();
            let sels: Vec<f64> = raw.iter().map(|&(_, s)| s).collect();
            let recall_mass: f64 = sizes.iter().zip(&sels).map(|(t, s)| t * s).sum();
            // Max achievable precision LHS is sum of t*s*(1-alpha).
            let prec_max: f64 = sizes
                .iter()
                .zip(&sels)
                .map(|(t, s)| t * s * (1.0 - alpha))
                .sum();
            GreedyProblem::from_group_stats(
                &sizes,
                &sels,
                alpha,
                1.0,
                3.0,
                beta * recall_mass,
                prec_frac * prec_max,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bigreedy_plans_are_feasible_and_bounded_below_by_lp(problem in greedy_instance()) {
        let lp = problem.to_linear_program();
        let simplex = lp.solve();
        if let Ok(plan) = problem.solve() {
            // Plan must satisfy its own constraints and bounds.
            prop_assert!(problem.recall_lhs(&plan.r) >= problem.recall_target - 1e-6);
            prop_assert!(
                problem.precision_lhs(&plan.r, &plan.e) >= problem.precision_target - 1e-6
            );
            for (r, e) in plan.r.iter().zip(&plan.e) {
                prop_assert!((0.0..=1.0 + 1e-9).contains(r));
                prop_assert!(*e >= -1e-9 && *e <= *r + 1e-9);
            }
            match simplex {
                LpOutcome::Optimal(s) => {
                    // A feasible greedy plan can never beat the LP optimum.
                    prop_assert!(
                        plan.cost >= s.objective - 1e-5 * (1.0 + s.objective.abs()),
                        "greedy {} below LP optimum {}",
                        plan.cost,
                        s.objective
                    );
                }
                other => prop_assert!(false, "simplex disagreed: {other:?}"),
            }
        }
    }

    #[test]
    fn solve_robust_matches_simplex_exactly(problem in greedy_instance()) {
        let lp = problem.to_linear_program();
        match (problem.solve_robust(true), lp.solve()) {
            (Ok(plan), LpOutcome::Optimal(s)) => {
                let scale = 1.0 + s.objective.abs();
                prop_assert!(
                    (plan.cost - s.objective).abs() < 1e-5 * scale,
                    "robust {} vs simplex {}",
                    plan.cost,
                    s.objective
                );
                prop_assert!(problem.recall_lhs(&plan.r) >= problem.recall_target - 1e-6);
                prop_assert!(
                    problem.precision_lhs(&plan.r, &plan.e) >= problem.precision_target - 1e-6
                );
            }
            (Err(_), LpOutcome::Infeasible) => {}
            (got, want) => prop_assert!(false, "robust {got:?} vs simplex {want:?}"),
        }
    }

    #[test]
    fn bigreedy_fast_path_feasible_whenever_it_answers(problem in greedy_instance()) {
        // The production fast path (greedy first, simplex fallback) must
        // always return a feasible plan when one exists.
        match (problem.solve_robust(false), problem.to_linear_program().solve()) {
            (Ok(plan), _) => {
                prop_assert!(problem.recall_lhs(&plan.r) >= problem.recall_target - 1e-6);
                prop_assert!(
                    problem.precision_lhs(&plan.r, &plan.e) >= problem.precision_target - 1e-6
                );
            }
            (Err(_), LpOutcome::Infeasible) => {}
            (Err(e), other) => prop_assert!(false, "fast path {e:?} but simplex {other:?}"),
        }
    }

    #[test]
    fn simplex_solutions_are_feasible(problem in greedy_instance()) {
        let lp = problem.to_linear_program();
        if let LpOutcome::Optimal(s) = lp.solve() {
            prop_assert!(lp.is_feasible(&s.x, 1e-6));
        }
    }

    #[test]
    fn random_small_lps_verify(
        n in 1usize..4,
        rows in prop::collection::vec(
            (prop::collection::vec(-5.0f64..5.0, 3), -10.0f64..10.0),
            0..4,
        ),
        obj in prop::collection::vec(0.0f64..5.0, 3),
    ) {
        // Nonnegative objective => never unbounded; check returned points.
        let constraints: Vec<Constraint> = rows
            .into_iter()
            .map(|(coeffs, rhs)| Constraint {
                coeffs: coeffs[..n].to_vec(),
                relation: Relation::Ge,
                rhs,
            })
            .collect();
        let lp = LinearProgram::new(obj[..n].to_vec(), constraints);
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                prop_assert!(lp.is_feasible(&s.x, 1e-6));
                prop_assert!(s.objective >= -1e-9);
            }
            LpOutcome::Infeasible => {}
            LpOutcome::Unbounded => prop_assert!(false, "nonneg objective can't be unbounded"),
        }
    }

    #[test]
    fn knapsack_exact_beats_greedy(
        raw in prop::collection::vec((1.0f64..20.0, 1u64..15), 1..8),
        frac in 0.1f64..0.9,
    ) {
        let items: Vec<Item> = raw.iter().map(|&(w, v)| Item { weight: w, value: v }).collect();
        let total: u64 = items.iter().map(|i| i.value).sum();
        let threshold = ((total as f64) * frac).ceil() as u64;
        let exact = solve_min_knapsack(&items, threshold).expect("threshold <= total");
        let greedy = greedy_min_knapsack(&items, threshold).expect("threshold <= total");
        prop_assert!(exact.total_value >= threshold);
        prop_assert!(greedy.total_value >= threshold);
        prop_assert!(exact.total_weight <= greedy.total_weight + 1e-9);
        // Exact solution must be optimal vs brute force for small n.
        if items.len() <= 6 {
            let mut best = f64::INFINITY;
            for mask in 0..(1usize << items.len()) {
                let v: u64 = (0..items.len())
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| items[i].value)
                    .sum();
                if v >= threshold {
                    let w: f64 = (0..items.len())
                        .filter(|i| mask & (1 << i) != 0)
                        .map(|i| items[i].weight)
                        .sum();
                    best = best.min(w);
                }
            }
            prop_assert!((exact.total_weight - best).abs() < 1e-9);
        }
    }

    #[test]
    fn perfect_info_exact_is_optimal_vs_bruteforce(
        raw in prop::collection::vec((0u64..80, 0u64..80), 2..6),
        alpha in 0.0f64..1.0,
        beta in 0.0f64..1.0,
    ) {
        let groups: Vec<PerfectGroup> = raw
            .iter()
            .map(|&(c, w)| PerfectGroup { correct: c, wrong: w.max(1) })
            .collect();
        let inst = PerfectInfoInstance {
            groups: groups.clone(),
            alpha,
            beta,
            cost_retrieve: 1.0,
            cost_evaluate: 3.0,
        };
        let opts = [Decision::Discard, Decision::Return, Decision::Evaluate];
        let mut best: Option<f64> = None;
        for mask in 0..3usize.pow(groups.len() as u32) {
            let mut m = mask;
            let decisions: Vec<Decision> = (0..groups.len())
                .map(|_| {
                    let d = opts[m % 3];
                    m /= 3;
                    d
                })
                .collect();
            if inst.is_feasible(&decisions) {
                let cost = inst.cost_of(&decisions);
                best = Some(best.map_or(cost, |b: f64| b.min(cost)));
            }
        }
        match (inst.solve_exact(), best) {
            (Some(sol), Some(b)) => prop_assert!(
                (sol.cost - b).abs() < 1e-9,
                "bb {} vs brute {}",
                sol.cost,
                b
            ),
            (None, None) => {}
            (got, want) => prop_assert!(false, "solver {got:?} vs brute {want:?}"),
        }
    }

    #[test]
    fn perfect_info_heuristic_feasible_when_exact_is(
        raw in prop::collection::vec((1u64..60, 1u64..60), 2..6),
        alpha in 0.0f64..0.9,
        beta in 0.0f64..1.0,
    ) {
        let inst = PerfectInfoInstance {
            groups: raw.iter().map(|&(c, w)| PerfectGroup { correct: c, wrong: w }).collect(),
            alpha,
            beta,
            cost_retrieve: 1.0,
            cost_evaluate: 3.0,
        };
        if let Some(exact) = inst.solve_exact() {
            let heur = inst.solve_heuristic();
            prop_assert!(heur.is_some(), "heuristic must find something when feasible");
            let heur = heur.unwrap();
            prop_assert!(inst.is_feasible(&heur.decisions));
            prop_assert!(heur.cost + 1e-9 >= exact.cost);
        }
    }
}
