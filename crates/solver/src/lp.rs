//! A dense two-phase simplex LP solver.
//!
//! Built from scratch so the workspace has an *independent* reference
//! solver: the paper's BiGreedy algorithm (§3.2.2) is cross-validated
//! against this implementation on randomized instances (see the property
//! tests), and the perfect-information branch-and-bound uses it for
//! relaxation bounds.
//!
//! Scope: minimize `c·x` subject to `a_i · x {≤,≥,=} b_i` and `x ≥ 0`.
//! Callers encode upper bounds and ordering constraints as rows. Dense
//! tableau with Bland's anti-cycling rule — `O(m·n)` per pivot, entirely
//! adequate for the paper's instance sizes (|A| ≤ a few thousand rows is
//! handled by BiGreedy instead; simplex is for validation and small exact
//! solves).

/// Direction of one linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

/// One linear constraint `coeffs · x REL rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Coefficient per variable (dense, length = `num_vars`).
    pub coeffs: Vec<f64>,
    /// Constraint direction.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program: minimize `objective · x` s.t. constraints, `x ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearProgram {
    /// Objective coefficients (minimization).
    pub objective: Vec<f64>,
    /// Constraint rows.
    pub constraints: Vec<Constraint>,
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal variable assignment.
    pub x: Vec<f64>,
    /// Optimal objective value.
    pub objective: f64,
}

/// Result of solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpOutcome {
    /// An optimal solution exists.
    Optimal(LpSolution),
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
}

impl LinearProgram {
    /// Creates a program after validating dimensions.
    pub fn new(objective: Vec<f64>, constraints: Vec<Constraint>) -> Self {
        for (i, c) in constraints.iter().enumerate() {
            assert_eq!(
                c.coeffs.len(),
                objective.len(),
                "constraint {i} has wrong arity"
            );
        }
        Self {
            objective,
            constraints,
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Solves the program with the two-phase simplex method.
    pub fn solve(&self) -> LpOutcome {
        Simplex::new(self).solve()
    }

    /// Checks feasibility of a point against all constraints (within
    /// `tol`), ignoring the sign restriction on variables beyond `-tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        if x.iter().any(|&v| v < -tol) {
            return false;
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.coeffs.iter().zip(x).map(|(a, v)| a * v).sum();
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

const EPS: f64 = 1e-9;

/// Dense tableau state for the two-phase method.
struct Simplex {
    /// tableau[r][c]; row 0..m are constraints, last column is RHS.
    tableau: Vec<Vec<f64>>,
    /// Basis variable per row.
    basis: Vec<usize>,
    /// Total structural + slack columns (excludes artificials).
    num_real: usize,
    /// Columns of artificial variables.
    artificial: Vec<usize>,
    /// Original problem.
    num_vars: usize,
    objective: Vec<f64>,
}

impl Simplex {
    fn new(lp: &LinearProgram) -> Self {
        let n = lp.num_vars();
        let m = lp.constraints.len();

        // Normalize rows to nonnegative RHS, then count slack columns.
        let mut rows: Vec<(Vec<f64>, Relation, f64)> = lp
            .constraints
            .iter()
            .map(|c| (c.coeffs.clone(), c.relation, c.rhs))
            .collect();
        for (coeffs, rel, rhs) in &mut rows {
            if *rhs < 0.0 {
                for a in coeffs.iter_mut() {
                    *a = -*a;
                }
                *rhs = -*rhs;
                *rel = match *rel {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }
        let num_slack = rows
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Eq)
            .count();
        let num_real = n + num_slack;

        // Artificial variables for Ge and Eq rows.
        let num_art = rows
            .iter()
            .filter(|(_, rel, _)| *rel != Relation::Le)
            .count();
        let width = num_real + num_art + 1; // + RHS column

        let mut tableau = vec![vec![0.0; width]; m];
        let mut basis = vec![usize::MAX; m];
        let mut artificial = Vec::with_capacity(num_art);
        let mut slack_col = n;
        let mut art_col = num_real;
        for (r, (coeffs, rel, rhs)) in rows.iter().enumerate() {
            tableau[r][..n].copy_from_slice(coeffs);
            tableau[r][width - 1] = *rhs;
            match rel {
                Relation::Le => {
                    tableau[r][slack_col] = 1.0;
                    basis[r] = slack_col;
                    slack_col += 1;
                }
                Relation::Ge => {
                    tableau[r][slack_col] = -1.0; // surplus
                    slack_col += 1;
                    tableau[r][art_col] = 1.0;
                    basis[r] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
                Relation::Eq => {
                    tableau[r][art_col] = 1.0;
                    basis[r] = art_col;
                    artificial.push(art_col);
                    art_col += 1;
                }
            }
        }

        Self {
            tableau,
            basis,
            num_real,
            artificial,
            num_vars: n,
            objective: lp.objective.clone(),
        }
    }

    fn solve(mut self) -> LpOutcome {
        // Constraint-free program: x = 0 is optimal iff no objective
        // coefficient is negative (x >= 0 otherwise lets it run away).
        if self.tableau.is_empty() {
            if self.objective.iter().any(|&c| c < -EPS) {
                return LpOutcome::Unbounded;
            }
            return LpOutcome::Optimal(LpSolution {
                x: vec![0.0; self.num_vars],
                objective: 0.0,
            });
        }
        // ---- Phase 1: minimize the sum of artificials. ----
        if !self.artificial.is_empty() {
            let width = self.tableau[0].len();
            let mut cost = vec![0.0; width];
            for &a in &self.artificial {
                cost[a] = 1.0;
            }
            let mut z = self.reduced_cost_row(&cost);
            match self.pivot_loop(&mut z, width) {
                PivotResult::Optimal => {}
                PivotResult::Unbounded => {
                    // Phase 1 objective is bounded below by 0; cannot happen
                    // on well-formed input.
                    return LpOutcome::Infeasible;
                }
            }
            let phase1_value = -z[width - 1];
            if phase1_value > 1e-7 {
                return LpOutcome::Infeasible;
            }
            // Drive any artificial still in the basis out (degenerate zero
            // rows), then forbid artificial columns.
            for r in 0..self.tableau.len() {
                if self.artificial.contains(&self.basis[r]) {
                    // Find a non-artificial column with nonzero coefficient.
                    let col = (0..self.num_real).find(|&c| self.tableau[r][c].abs() > EPS);
                    if let Some(c) = col {
                        self.pivot(r, c);
                    }
                    // If none exists the row is all-zero: harmless.
                }
            }
        }

        // ---- Phase 2: original objective over real columns only. ----
        let width = self.tableau[0].len();
        let mut cost = vec![0.0; width];
        cost[..self.num_vars].copy_from_slice(&self.objective);
        let mut z = self.reduced_cost_row(&cost);
        match self.pivot_loop_restricted(&mut z, self.num_real, width) {
            PivotResult::Optimal => {}
            PivotResult::Unbounded => return LpOutcome::Unbounded,
        }

        // Extract solution.
        let mut x = vec![0.0; self.num_vars];
        for (r, &b) in self.basis.iter().enumerate() {
            if b < self.num_vars {
                x[b] = self.tableau[r][width - 1];
            }
        }
        let objective = self
            .objective
            .iter()
            .zip(&x)
            .map(|(c, v)| c * v)
            .sum::<f64>();
        LpOutcome::Optimal(LpSolution { x, objective })
    }

    /// Builds the reduced-cost row `z_j - c_j` representation: we store the
    /// row as `c_j - Σ c_B B^{-1} A_j` in z[0..width-1] and the negated
    /// objective value in z[width-1].
    fn reduced_cost_row(&self, cost: &[f64]) -> Vec<f64> {
        let width = self.tableau[0].len();
        let mut z = cost.to_vec();
        z[width - 1] = 0.0;
        for (r, &b) in self.basis.iter().enumerate() {
            let cb = cost[b];
            if cb != 0.0 {
                for (zc, tc) in z.iter_mut().zip(&self.tableau[r][..width]) {
                    *zc -= cb * tc;
                }
            }
        }
        z
    }

    fn pivot_loop(&mut self, z: &mut [f64], width: usize) -> PivotResult {
        self.pivot_loop_restricted(z, width - 1, width)
    }

    /// Pivots until optimal, considering only columns `< allowed_cols` as
    /// entering candidates (used in Phase 2 to exclude artificials).
    fn pivot_loop_restricted(
        &mut self,
        z: &mut [f64],
        allowed_cols: usize,
        width: usize,
    ) -> PivotResult {
        // Bland's rule: smallest-index entering column with negative
        // reduced cost; smallest-index leaving row on ties.
        loop {
            let entering = (0..allowed_cols).find(|&c| z[c] < -EPS);
            let Some(col) = entering else {
                return PivotResult::Optimal;
            };
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.tableau.len() {
                let a = self.tableau[r][col];
                if a > EPS {
                    let ratio = self.tableau[r][width - 1] / a;
                    let better = match leave {
                        None => true,
                        Some((lr, lv)) => {
                            ratio < lv - EPS || (ratio < lv + EPS && self.basis[r] < self.basis[lr])
                        }
                    };
                    if better {
                        leave = Some((r, ratio));
                    }
                }
            }
            let Some((row, _)) = leave else {
                return PivotResult::Unbounded;
            };
            self.pivot(row, col);
            // Update the reduced-cost row for the pivot.
            let factor = z[col];
            if factor != 0.0 {
                for (zc, tc) in z.iter_mut().zip(&self.tableau[row][..width]) {
                    *zc -= factor * tc;
                }
                z[col] = 0.0; // exact
            }
        }
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let width = self.tableau[0].len();
        let pivot_val = self.tableau[row][col];
        debug_assert!(pivot_val.abs() > EPS, "pivot on ~zero element");
        for c in 0..width {
            self.tableau[row][c] /= pivot_val;
        }
        self.tableau[row][col] = 1.0;
        for r in 0..self.tableau.len() {
            if r != row {
                let factor = self.tableau[r][col];
                if factor != 0.0 {
                    for c in 0..width {
                        self.tableau[r][c] -= factor * self.tableau[row][c];
                    }
                    self.tableau[r][col] = 0.0;
                }
            }
        }
        self.basis[row] = col;
    }
}

enum PivotResult {
    Optimal,
    Unbounded,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(coeffs: Vec<f64>, relation: Relation, rhs: f64) -> Constraint {
        Constraint {
            coeffs,
            relation,
            rhs,
        }
    }

    #[test]
    fn simple_minimization() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6, x,y >= 0.
        // Optimum at intersection: x=1.6, y=1.2, objective 2.8.
        let lp = LinearProgram::new(
            vec![1.0, 1.0],
            vec![
                c(vec![1.0, 2.0], Relation::Ge, 4.0),
                c(vec![3.0, 1.0], Relation::Ge, 6.0),
            ],
        );
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                assert!((s.objective - 2.8).abs() < 1e-7, "obj={}", s.objective);
                assert!((s.x[0] - 1.6).abs() < 1e-7);
                assert!((s.x[1] - 1.2).abs() < 1e-7);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn maximization_via_negation() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => min -3x -2y.
        // Optimum x=4, y=0, value 12.
        let lp = LinearProgram::new(
            vec![-3.0, -2.0],
            vec![
                c(vec![1.0, 1.0], Relation::Le, 4.0),
                c(vec![1.0, 3.0], Relation::Le, 6.0),
            ],
        );
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                assert!((s.objective + 12.0).abs() < 1e-7, "obj={}", s.objective);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        // x >= 2 and x <= 1.
        let lp = LinearProgram::new(
            vec![1.0],
            vec![
                c(vec![1.0], Relation::Ge, 2.0),
                c(vec![1.0], Relation::Le, 1.0),
            ],
        );
        assert_eq!(lp.solve(), LpOutcome::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        // min -x s.t. x >= 1 (x can grow without bound).
        let lp = LinearProgram::new(vec![-1.0], vec![c(vec![1.0], Relation::Ge, 1.0)]);
        assert_eq!(lp.solve(), LpOutcome::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1  => x=3, y=2.
        let lp = LinearProgram::new(
            vec![1.0, 1.0],
            vec![
                c(vec![1.0, 1.0], Relation::Eq, 5.0),
                c(vec![1.0, -1.0], Relation::Eq, 1.0),
            ],
        );
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                assert!((s.x[0] - 3.0).abs() < 1e-7);
                assert!((s.x[1] - 2.0).abs() < 1e-7);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x s.t. -x <= -3  (i.e. x >= 3).
        let lp = LinearProgram::new(vec![1.0], vec![c(vec![-1.0], Relation::Le, -3.0)]);
        match lp.solve() {
            LpOutcome::Optimal(s) => assert!((s.x[0] - 3.0).abs() < 1e-7),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degeneracy: multiple constraints active at the optimum.
        let lp = LinearProgram::new(
            vec![-0.75, 150.0, -0.02, 6.0],
            vec![
                c(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0),
                c(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0),
                c(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0),
            ],
        );
        // Beale's cycling example: Bland's rule must terminate (optimum
        // -0.05 at x = (0.04, 0, 1, 0)).
        match lp.solve() {
            LpOutcome::Optimal(s) => {
                assert!((s.objective + 0.05).abs() < 1e-7, "obj={}", s.objective);
            }
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn feasibility_checker() {
        let lp = LinearProgram::new(vec![1.0, 1.0], vec![c(vec![1.0, 1.0], Relation::Ge, 1.0)]);
        assert!(lp.is_feasible(&[0.5, 0.6], 1e-9));
        assert!(!lp.is_feasible(&[0.2, 0.2], 1e-9));
        assert!(!lp.is_feasible(&[-0.5, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[1.0], 1e-9));
    }

    #[test]
    fn zero_constraint_lp() {
        // Unconstrained minimization of x over x >= 0: optimum 0.
        let lp = LinearProgram::new(vec![1.0], vec![]);
        match lp.solve() {
            LpOutcome::Optimal(s) => assert_eq!(s.objective, 0.0),
            other => panic!("expected optimal, got {other:?}"),
        }
    }
}
