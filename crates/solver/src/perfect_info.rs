//! Problem 1: the perfect-information setting (paper §3.1).
//!
//! With exact per-group counts `C_a` (correct) and `W_a` (incorrect), pick
//! a deterministic 3-way decision per group — discard, return-unevaluated,
//! or evaluate — minimizing `Σ (C_a+W_a)(o_r R_a + o_e E_a)` subject to
//!
//! * recall: `Σ C_a R_a ≥ β Σ C_a`
//! * precision (multiplied-out, so `α = 0` needs no special case):
//!   `(1-α) Σ C_a R_a − α Σ W_a (R_a − E_a) ≥ 0`
//!
//! This is NP-hard (Theorem 3.2, by min-knapsack reduction — see
//! [`crate::knapsack`]). We provide an exact branch-and-bound for the
//! moderate group counts the paper's datasets exhibit (≤ ~25 groups) and
//! an LP-relaxation + safe-rounding heuristic for larger instances.

use crate::bigreedy::GreedyProblem;

/// Per-group exact counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfectGroup {
    /// Number of tuples satisfying the predicate (`C_a`).
    pub correct: u64,
    /// Number of tuples not satisfying it (`W_a`).
    pub wrong: u64,
}

impl PerfectGroup {
    /// Total tuples `t_a`.
    pub fn size(&self) -> u64 {
        self.correct + self.wrong
    }

    /// Exact selectivity `C_a / t_a` (0 for empty groups).
    pub fn selectivity(&self) -> f64 {
        let t = self.size();
        if t == 0 {
            0.0
        } else {
            self.correct as f64 / t as f64
        }
    }
}

/// The 3-way per-group decision of Problem 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// `R_a = 0, E_a = 0`: drop the whole group.
    Discard,
    /// `R_a = 1, E_a = 0`: return every tuple unevaluated.
    Return,
    /// `R_a = 1, E_a = 1`: evaluate every tuple, keep the ones that pass.
    Evaluate,
}

impl Decision {
    fn r(self) -> f64 {
        match self {
            Decision::Discard => 0.0,
            _ => 1.0,
        }
    }

    fn e(self) -> f64 {
        match self {
            Decision::Evaluate => 1.0,
            _ => 0.0,
        }
    }
}

/// A Problem-1 instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfectInfoInstance {
    /// Exact counts per group.
    pub groups: Vec<PerfectGroup>,
    /// Precision lower bound `α ∈ [0,1]`.
    pub alpha: f64,
    /// Recall lower bound `β ∈ [0,1]`.
    pub beta: f64,
    /// Retrieval cost `o_r`.
    pub cost_retrieve: f64,
    /// Evaluation cost `o_e`.
    pub cost_evaluate: f64,
}

/// An exact or heuristic solution to Problem 1.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfectInfoSolution {
    /// Per-group decision.
    pub decisions: Vec<Decision>,
    /// Objective value.
    pub cost: f64,
}

impl PerfectInfoInstance {
    fn total_correct(&self) -> u64 {
        self.groups.iter().map(|g| g.correct).sum()
    }

    /// Recall-constraint RHS `γ = β Σ C_a`.
    pub fn recall_required(&self) -> f64 {
        self.beta * self.total_correct() as f64
    }

    /// Cost of a decision vector.
    pub fn cost_of(&self, decisions: &[Decision]) -> f64 {
        assert_eq!(decisions.len(), self.groups.len());
        self.groups
            .iter()
            .zip(decisions)
            .map(|(g, d)| {
                g.size() as f64 * (self.cost_retrieve * d.r() + self.cost_evaluate * d.e())
            })
            .sum()
    }

    /// Whether a decision vector meets both constraints.
    pub fn is_feasible(&self, decisions: &[Decision]) -> bool {
        let recall: f64 = self
            .groups
            .iter()
            .zip(decisions)
            .map(|(g, d)| g.correct as f64 * d.r())
            .sum();
        if recall < self.recall_required() - 1e-9 {
            return false;
        }
        self.precision_margin(decisions) >= -1e-9
    }

    /// Precision margin `(1-α) Σ C_a R_a − α Σ W_a (R_a − E_a)`.
    pub fn precision_margin(&self, decisions: &[Decision]) -> f64 {
        self.groups
            .iter()
            .zip(decisions)
            .map(|(g, d)| {
                (1.0 - self.alpha) * g.correct as f64 * d.r()
                    - self.alpha * g.wrong as f64 * (d.r() - d.e())
            })
            .sum()
    }

    /// Exact optimum by branch-and-bound. Returns `None` when infeasible.
    ///
    /// Intended for instances up to ~25 groups (the paper's datasets have
    /// 7–10); beyond that use [`Self::solve_heuristic`].
    pub fn solve_exact(&self) -> Option<PerfectInfoSolution> {
        let k = self.groups.len();
        assert!(
            k <= 26,
            "exact perfect-information solve is exponential; use solve_heuristic for {k} groups"
        );
        // Order groups by selectivity descending: good solutions retrieve
        // high-selectivity groups, so promising branches come first.
        let mut order: Vec<usize> = (0..k).collect();
        order.sort_by(|&a, &b| {
            self.groups[b]
                .selectivity()
                .partial_cmp(&self.groups[a].selectivity())
                .unwrap()
                .then(a.cmp(&b))
        });

        // Suffix aggregates for pruning.
        // suffix_correct[i] = total correct tuples in groups order[i..].
        let mut suffix_correct = vec![0.0; k + 1];
        // suffix_prec_gain[i] = max achievable precision-margin gain.
        let mut suffix_prec_gain = vec![0.0; k + 1];
        // suffix_best_ratio[i] = max recall per unit cost.
        let mut suffix_best_ratio = vec![0.0f64; k + 1];
        for i in (0..k).rev() {
            let g = &self.groups[order[i]];
            suffix_correct[i] = suffix_correct[i + 1] + g.correct as f64;
            // Best per-group margin gain: Evaluate gives (1-α)C ≥ 0;
            // Return gives (1-α)C − αW; Discard gives 0.
            let eval_gain = (1.0 - self.alpha) * g.correct as f64;
            suffix_prec_gain[i] = suffix_prec_gain[i + 1] + eval_gain.max(0.0);
            let ratio = if g.size() == 0 {
                0.0
            } else {
                g.correct as f64 / (g.size() as f64 * self.cost_retrieve.max(1e-12))
            };
            suffix_best_ratio[i] = suffix_best_ratio[i + 1].max(ratio);
        }

        let gamma = self.recall_required();
        let mut best_cost = f64::INFINITY;
        let mut best: Option<Vec<Decision>> = None;
        let mut current = vec![Decision::Discard; k];

        // Depth-first over ordered groups.
        struct Ctx<'a> {
            inst: &'a PerfectInfoInstance,
            order: &'a [usize],
            suffix_correct: &'a [f64],
            suffix_prec_gain: &'a [f64],
            suffix_best_ratio: &'a [f64],
            gamma: f64,
        }
        #[allow(clippy::too_many_arguments)]
        fn dfs(
            ctx: &Ctx<'_>,
            depth: usize,
            cost: f64,
            recall: f64,
            margin: f64,
            current: &mut Vec<Decision>,
            best_cost: &mut f64,
            best: &mut Option<Vec<Decision>>,
        ) {
            // Bound: optimistic remaining cost for missing recall.
            let recall_deficit = (ctx.gamma - recall).max(0.0);
            if recall_deficit > 0.0 {
                if recall + ctx.suffix_correct[depth] < ctx.gamma - 1e-9 {
                    return; // recall can no longer be met
                }
                let best_ratio = ctx.suffix_best_ratio[depth];
                if best_ratio > 0.0 {
                    let bound = cost + recall_deficit / best_ratio;
                    if bound >= *best_cost - 1e-9 {
                        return;
                    }
                } // ratio 0 with deficit>0 is caught by the suffix check
            } else if cost >= *best_cost - 1e-9 {
                return;
            }
            // Bound: precision margin can never recover.
            if margin + ctx.suffix_prec_gain[depth] < -1e-9 {
                return;
            }
            if depth == ctx.order.len() {
                if recall_deficit <= 0.0 && margin >= -1e-9 && cost < *best_cost {
                    *best_cost = cost;
                    *best = Some(current.clone());
                }
                return;
            }
            let a = ctx.order[depth];
            let g = &ctx.inst.groups[a];
            let (c, w, t) = (g.correct as f64, g.wrong as f64, g.size() as f64);
            let alpha = ctx.inst.alpha;
            // Try the three decisions; cheaper-but-riskier first so good
            // upper bounds arrive early on high-selectivity prefixes.
            let options = [
                (
                    Decision::Return,
                    t * ctx.inst.cost_retrieve,
                    c,
                    (1.0 - alpha) * c - alpha * w,
                ),
                (
                    Decision::Evaluate,
                    t * (ctx.inst.cost_retrieve + ctx.inst.cost_evaluate),
                    c,
                    (1.0 - alpha) * c,
                ),
                (Decision::Discard, 0.0, 0.0, 0.0),
            ];
            for (d, dc, dr, dm) in options {
                current[a] = d;
                dfs(
                    ctx,
                    depth + 1,
                    cost + dc,
                    recall + dr,
                    margin + dm,
                    current,
                    best_cost,
                    best,
                );
            }
            current[a] = Decision::Discard;
        }

        let ctx = Ctx {
            inst: self,
            order: &order,
            suffix_correct: &suffix_correct,
            suffix_prec_gain: &suffix_prec_gain,
            suffix_best_ratio: &suffix_best_ratio,
            gamma,
        };
        dfs(
            &ctx,
            0,
            0.0,
            0.0,
            0.0,
            &mut current,
            &mut best_cost,
            &mut best,
        );
        best.map(|decisions| PerfectInfoSolution {
            cost: self.cost_of(&decisions),
            decisions,
        })
    }

    /// LP-relaxation + safe rounding: solve the fractional problem with
    /// BiGreedy (zero concentration slack — information is perfect), then
    /// round every positive probability up to 1.
    ///
    /// Rounding up is *safe*: raising `R_a` (with `E_a = R_a`) can only
    /// increase both constraint LHS values, so the rounded plan stays
    /// feasible; at most two groups are fractional after BiGreedy so the
    /// cost overshoot is bounded by two group costs.
    pub fn solve_heuristic(&self) -> Option<PerfectInfoSolution> {
        let sizes: Vec<f64> = self.groups.iter().map(|g| g.size() as f64).collect();
        let sels: Vec<f64> = self.groups.iter().map(|g| g.selectivity()).collect();
        let problem = GreedyProblem::from_group_stats(
            &sizes,
            &sels,
            self.alpha,
            self.cost_retrieve,
            self.cost_evaluate,
            self.recall_required(),
            0.0,
        );
        let plan = problem.solve().ok()?;
        let decisions: Vec<Decision> = plan
            .r
            .iter()
            .zip(&plan.e)
            .map(|(&r, &e)| {
                if r <= 1e-12 {
                    Decision::Discard
                } else if e <= 1e-12 {
                    Decision::Return
                } else {
                    Decision::Evaluate
                }
            })
            .collect();
        if self.is_feasible(&decisions) {
            Some(PerfectInfoSolution {
                cost: self.cost_of(&decisions),
                decisions,
            })
        } else {
            // Safe fallback: evaluate everything (always feasible when a
            // feasible plan exists at all, since it maximizes both LHS).
            let all_eval = vec![Decision::Evaluate; self.groups.len()];
            self.is_feasible(&all_eval).then(|| PerfectInfoSolution {
                cost: self.cost_of(&all_eval),
                decisions: all_eval,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 3.1: groups of 1000 with 900/500/100 correct,
    /// α = β = 0.9.
    fn example_31() -> PerfectInfoInstance {
        PerfectInfoInstance {
            groups: vec![
                PerfectGroup {
                    correct: 900,
                    wrong: 100,
                },
                PerfectGroup {
                    correct: 500,
                    wrong: 500,
                },
                PerfectGroup {
                    correct: 100,
                    wrong: 900,
                },
            ],
            alpha: 0.9,
            beta: 0.9,
            cost_retrieve: 1.0,
            cost_evaluate: 3.0,
        }
    }

    #[test]
    fn example_31_solution_matches_paper() {
        // The paper: return group 1, evaluate group 2 -> 1400 correct of
        // 1500 returned (after eval filtering), satisfying both bounds.
        let inst = example_31();
        let sol = inst.solve_exact().expect("feasible");
        assert_eq!(sol.decisions[0], Decision::Return);
        assert_eq!(sol.decisions[1], Decision::Evaluate);
        assert_eq!(sol.decisions[2], Decision::Discard);
        // Cost: group 0 retrieve (1000) + group 1 retrieve+evaluate (4000).
        assert_eq!(sol.cost, 5000.0);
        assert!(inst.is_feasible(&sol.decisions));
    }

    #[test]
    fn paper_strategy_is_feasible() {
        let inst = example_31();
        let decisions = vec![Decision::Return, Decision::Evaluate, Decision::Discard];
        assert!(inst.is_feasible(&decisions));
        // Returning everything violates precision (1500/3000 = 0.5 < 0.9).
        let all_return = vec![Decision::Return; 3];
        assert!(!inst.is_feasible(&all_return));
    }

    #[test]
    fn infeasible_when_beta_exceeds_possible() {
        let mut inst = example_31();
        inst.beta = 1.01; // more than all correct tuples
        assert!(inst.solve_exact().is_none());
    }

    #[test]
    fn zero_constraints_mean_zero_cost() {
        let mut inst = example_31();
        inst.alpha = 0.0;
        inst.beta = 0.0;
        let sol = inst.solve_exact().unwrap();
        assert_eq!(sol.cost, 0.0);
        assert!(sol.decisions.iter().all(|d| *d == Decision::Discard));
    }

    #[test]
    fn heuristic_is_feasible_and_near_exact() {
        let inst = example_31();
        let exact = inst.solve_exact().unwrap();
        let heur = inst.solve_heuristic().unwrap();
        assert!(inst.is_feasible(&heur.decisions));
        // Rounding can overshoot by at most ~2 group costs.
        assert!(heur.cost <= exact.cost + 2.0 * 4000.0 + 1e-9);
        assert!(heur.cost + 1e-9 >= exact.cost, "heuristic beats exact?");
    }

    #[test]
    fn browsing_scenario_full_precision() {
        // alpha = 1 forces evaluation of everything retrieved.
        let mut inst = example_31();
        inst.alpha = 1.0;
        inst.beta = 0.5;
        let sol = inst.solve_exact().unwrap();
        for (g, d) in inst.groups.iter().zip(&sol.decisions) {
            if g.correct > 0 {
                assert_ne!(
                    *d,
                    Decision::Return,
                    "perfect precision forbids unevaluated returns of mixed groups"
                );
            }
        }
        assert!(inst.is_feasible(&sol.decisions));
    }

    #[test]
    fn pure_groups_can_be_returned_even_at_full_precision() {
        let inst = PerfectInfoInstance {
            groups: vec![
                PerfectGroup {
                    correct: 100,
                    wrong: 0,
                },
                PerfectGroup {
                    correct: 0,
                    wrong: 100,
                },
            ],
            alpha: 1.0,
            beta: 1.0,
            cost_retrieve: 1.0,
            cost_evaluate: 3.0,
        };
        let sol = inst.solve_exact().unwrap();
        assert_eq!(sol.decisions[0], Decision::Return);
        assert_eq!(sol.decisions[1], Decision::Discard);
        assert_eq!(sol.cost, 100.0);
    }

    #[test]
    fn exact_beats_or_matches_all_enumeration() {
        // Cross-check branch-and-bound against brute force on a random-ish
        // instance.
        let inst = PerfectInfoInstance {
            groups: vec![
                PerfectGroup {
                    correct: 30,
                    wrong: 20,
                },
                PerfectGroup {
                    correct: 10,
                    wrong: 60,
                },
                PerfectGroup {
                    correct: 50,
                    wrong: 10,
                },
                PerfectGroup {
                    correct: 5,
                    wrong: 5,
                },
                PerfectGroup {
                    correct: 25,
                    wrong: 40,
                },
            ],
            alpha: 0.7,
            beta: 0.75,
            cost_retrieve: 1.0,
            cost_evaluate: 2.5,
        };
        let sol = inst.solve_exact().unwrap();
        // Brute force over 3^5 decision vectors.
        let mut best = f64::INFINITY;
        let opts = [Decision::Discard, Decision::Return, Decision::Evaluate];
        for mask in 0..3usize.pow(5) {
            let mut m = mask;
            let decisions: Vec<Decision> = (0..5)
                .map(|_| {
                    let d = opts[m % 3];
                    m /= 3;
                    d
                })
                .collect();
            if inst.is_feasible(&decisions) {
                best = best.min(inst.cost_of(&decisions));
            }
        }
        assert!(
            (sol.cost - best).abs() < 1e-9,
            "bb {} vs brute {}",
            sol.cost,
            best
        );
    }
}
