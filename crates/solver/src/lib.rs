//! Optimization substrate for the `expred` workspace.
//!
//! Everything the paper's query optimizer needs, built from scratch:
//!
//! * [`lp`] — a dense two-phase simplex solver; the workspace's
//!   independent reference for linear programs.
//! * [`bigreedy`] — the paper's `O(|A| log |A|)` BiGreedy algorithm
//!   (§3.2.2) over abstract per-group coefficients; the production path
//!   for LinearProg 3.4 and the kernel inside the convex fixed-point
//!   iterations of §3.3/§4.2.
//! * [`perfect_info`] — Problem 1 (perfect information): exact
//!   branch-and-bound plus an LP-relaxation heuristic.
//! * [`knapsack`] — minimum knapsack (exact DP + greedy) and the
//!   Theorem 3.2 reduction from min-knapsack to Problem 1, executable as a
//!   test rather than just a citation.

pub mod bigreedy;
pub mod knapsack;
pub mod lp;
pub mod perfect_info;

pub use bigreedy::{GreedyError, GreedyGroup, GreedyPlan, GreedyProblem};
pub use lp::{Constraint, LinearProgram, LpOutcome, LpSolution, Relation};
pub use perfect_info::{Decision, PerfectGroup, PerfectInfoInstance, PerfectInfoSolution};
