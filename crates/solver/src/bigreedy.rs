//! The paper's BiGreedy algorithm (§3.2.2).
//!
//! BiGreedy solves the structured LP of LinearProg 3.4 in `O(|A| log |A|)`
//! without a generic solver:
//!
//! 1. raise retrieval probabilities `R_a` to 1 in *decreasing* selectivity
//!    order until the recall constraint is met (fractionally at the last
//!    group), then
//! 2. raise evaluation probabilities `E_a` toward `R_a` in *increasing*
//!    selectivity order (over groups with `R_a > 0`) until the precision
//!    constraint is met.
//!
//! The module is written against abstract per-group coefficients, so the
//! same kernel serves Problem 2 (perfect selectivities), the fixed-point
//! iterations of the estimated-selectivity convex programs (§3.3), and the
//! sampling-aware program of §4.2 — they differ only in how coefficients
//! and thresholds are computed.

/// Per-group coefficients of the structured LP.
///
/// With the paper's Problem-2 instantiation: `cost_r = t_a·o_r`,
/// `cost_e = t_a·o_e`, `recall_r = t_a·s_a`,
/// `prec_r = t_a·s_a·(1-α) − α·t_a·(1-s_a)`, `prec_e = α·t_a·(1-s_a)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GreedyGroup {
    /// Sort key: the group's (estimated) selectivity `s_a`.
    pub selectivity: f64,
    /// Objective weight per unit of `R_a`.
    pub cost_r: f64,
    /// Objective weight per unit of `E_a`.
    pub cost_e: f64,
    /// Recall-constraint coefficient of `R_a` (must be ≥ 0).
    pub recall_r: f64,
    /// Precision-constraint coefficient of `R_a` (may be negative).
    pub prec_r: f64,
    /// Precision-constraint coefficient of `E_a` (must be ≥ 0).
    pub prec_e: f64,
}

/// The structured LP: minimize `Σ cost_r·R + cost_e·E` subject to
/// `Σ recall_r·R ≥ recall_target`, `Σ prec_r·R + prec_e·E ≥
/// precision_target`, `0 ≤ E_a ≤ R_a ≤ 1`.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyProblem {
    /// Per-group coefficients.
    pub groups: Vec<GreedyGroup>,
    /// Required recall-constraint LHS.
    pub recall_target: f64,
    /// Required precision-constraint LHS.
    pub precision_target: f64,
}

/// A fractional retrieval/evaluation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyPlan {
    /// Per-group retrieval probabilities `R_a ∈ [0,1]`.
    pub r: Vec<f64>,
    /// Per-group evaluation probabilities `E_a ∈ [0,R_a]`.
    pub e: Vec<f64>,
    /// Objective value `Σ cost_r·R + cost_e·E`.
    pub cost: f64,
}

/// Why BiGreedy could not produce a feasible plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GreedyError {
    /// Even `R ≡ 1` cannot meet the recall target.
    RecallUnreachable,
    /// Even `E ≡ R` on all retrieved groups cannot meet the precision
    /// target given the chosen retrievals.
    PrecisionUnreachable,
}

impl std::fmt::Display for GreedyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GreedyError::RecallUnreachable => {
                write!(f, "recall target exceeds the total available recall mass")
            }
            GreedyError::PrecisionUnreachable => {
                write!(
                    f,
                    "precision target unreachable even evaluating every retrieved tuple"
                )
            }
        }
    }
}

impl std::error::Error for GreedyError {}

impl GreedyProblem {
    /// Builds the Problem-2 instantiation from raw group statistics.
    ///
    /// `sizes[a] = t_a` (effective group size), `sels[a] = s_a`,
    /// precision bound `alpha`, costs `(o_r, o_e)`. Thresholds
    /// (`recall_target` / `precision_target`) are supplied by the caller
    /// because they differ across the paper's settings (Hoeffding vs
    /// Chebyshev vs sampling-adjusted).
    pub fn from_group_stats(
        sizes: &[f64],
        sels: &[f64],
        alpha: f64,
        cost_retrieve: f64,
        cost_evaluate: f64,
        recall_target: f64,
        precision_target: f64,
    ) -> Self {
        assert_eq!(sizes.len(), sels.len());
        let groups = sizes
            .iter()
            .zip(sels)
            .map(|(&t, &s)| GreedyGroup {
                selectivity: s,
                cost_r: t * cost_retrieve,
                cost_e: t * cost_evaluate,
                recall_r: t * s,
                prec_r: t * s * (1.0 - alpha) - alpha * t * (1.0 - s),
                prec_e: alpha * t * (1.0 - s),
            })
            .collect();
        Self {
            groups,
            recall_target,
            precision_target,
        }
    }

    /// Recall-constraint LHS for a plan.
    pub fn recall_lhs(&self, r: &[f64]) -> f64 {
        self.groups
            .iter()
            .zip(r)
            .map(|(g, &ra)| g.recall_r * ra)
            .sum()
    }

    /// Precision-constraint LHS for a plan.
    pub fn precision_lhs(&self, r: &[f64], e: &[f64]) -> f64 {
        self.groups
            .iter()
            .zip(r.iter().zip(e))
            .map(|(g, (&ra, &ea))| g.prec_r * ra + g.prec_e * ea)
            .sum()
    }

    /// Objective value for a plan.
    pub fn cost(&self, r: &[f64], e: &[f64]) -> f64 {
        self.groups
            .iter()
            .zip(r.iter().zip(e))
            .map(|(g, (&ra, &ea))| g.cost_r * ra + g.cost_e * ea)
            .sum()
    }

    /// Runs BiGreedy. Returns the plan or a structured infeasibility.
    pub fn solve(&self) -> Result<GreedyPlan, GreedyError> {
        let k = self.groups.len();
        let mut r = vec![0.0; k];
        let mut e = vec![0.0; k];

        // Phase R: raise retrievals in decreasing selectivity order.
        let mut by_sel_desc: Vec<usize> = (0..k).collect();
        by_sel_desc.sort_by(|&a, &b| {
            self.groups[b]
                .selectivity
                .partial_cmp(&self.groups[a].selectivity)
                .expect("NaN selectivity")
                .then(a.cmp(&b))
        });
        let mut recall = 0.0;
        if self.recall_target > 0.0 {
            let mut met = false;
            for &a in &by_sel_desc {
                let g = &self.groups[a];
                if g.recall_r <= 0.0 {
                    // Zero-selectivity groups cannot help recall.
                    continue;
                }
                let deficit = self.recall_target - recall;
                if deficit <= 0.0 {
                    met = true;
                    break;
                }
                if g.recall_r >= deficit {
                    r[a] = (deficit / g.recall_r).min(1.0);
                    recall += g.recall_r * r[a];
                    met = recall >= self.recall_target - 1e-12;
                    if met {
                        break;
                    }
                } else {
                    r[a] = 1.0;
                    recall += g.recall_r;
                }
            }
            if !met && recall < self.recall_target - 1e-9 {
                return Err(GreedyError::RecallUnreachable);
            }
        }

        // Phase E: raise evaluations in increasing selectivity order over
        // retrieved groups.
        let mut precision = self.precision_lhs(&r, &e);
        if precision < self.precision_target {
            let mut by_sel_asc = by_sel_desc;
            by_sel_asc.reverse();
            for &a in &by_sel_asc {
                if precision >= self.precision_target - 1e-12 {
                    break;
                }
                if r[a] <= 0.0 {
                    continue;
                }
                let g = &self.groups[a];
                if g.prec_e <= 0.0 {
                    continue;
                }
                let deficit = self.precision_target - precision;
                let full_gain = g.prec_e * r[a];
                if full_gain >= deficit {
                    e[a] = deficit / g.prec_e;
                    precision += deficit;
                } else {
                    e[a] = r[a];
                    precision += full_gain;
                }
            }
            if precision < self.precision_target - 1e-9 {
                return Err(GreedyError::PrecisionUnreachable);
            }
        }

        let cost = self.cost(&r, &e);
        Ok(GreedyPlan { r, e, cost })
    }

    /// Whether the sufficient conditions of the paper's Theorem 3.8 hold,
    /// under which BiGreedy solves the LP exactly:
    ///
    /// * `precision_target < Σ_a max(t_a (s_a − α), 0)` — in coefficient
    ///   form, `Σ max(prec_r + prec_e·0, …)`; note `prec_r = t_a(s_a − α)`
    ///   for the Problem-2 instantiation, and
    /// * `recall_target < Σ_a recall_r` (the recall mass strictly covers
    ///   the target).
    pub fn theorem_38_preconditions(&self) -> bool {
        let prec_cap: f64 = self.groups.iter().map(|g| g.prec_r.max(0.0)).sum();
        let recall_cap: f64 = self.groups.iter().map(|g| g.recall_r).sum();
        self.precision_target < prec_cap && self.recall_target < recall_cap
    }

    /// BiGreedy with an exact fallback.
    ///
    /// The literal two-phase greedy of §3.2.2 only covers plans whose
    /// recall constraint is tight; when the cheapest way to reach the
    /// precision target is to *over-retrieve* high-selectivity groups
    /// (possible when `s_a > α` groups remain unretrieved after the recall
    /// phase), it misreports infeasibility or returns a suboptimal plan.
    /// This wrapper runs BiGreedy first and falls back to the from-scratch
    /// simplex solver whenever the greedy fails; callers that need the
    /// exact LP optimum regardless of regime can pass
    /// `always_exact = true` (cheap for the paper's |A| ≤ ~50).
    pub fn solve_robust(&self, always_exact: bool) -> Result<GreedyPlan, GreedyError> {
        let greedy = self.solve();
        if !always_exact {
            if let Ok(plan) = greedy {
                return Ok(plan);
            }
        }
        match self.to_linear_program().solve() {
            crate::lp::LpOutcome::Optimal(s) => {
                let k = self.groups.len();
                let r = s.x[..k].to_vec();
                // Clamp tiny simplex noise into the box; enforce E <= R.
                let e: Vec<f64> = s.x[k..2 * k]
                    .iter()
                    .zip(&r)
                    .map(|(&e, &r)| e.clamp(0.0, r.max(0.0)))
                    .collect();
                let r: Vec<f64> = r.into_iter().map(|v| v.clamp(0.0, 1.0)).collect();
                let cost = self.cost(&r, &e);
                Ok(GreedyPlan { r, e, cost })
            }
            // If the greedy found a (constructively feasible) plan but the
            // simplex calls the instance infeasible, the instance is
            // numerically borderline — trust the constructive answer.
            crate::lp::LpOutcome::Infeasible => greedy,
            crate::lp::LpOutcome::Unbounded => {
                unreachable!("bounded variables and nonnegative costs cannot be unbounded")
            }
        }
    }

    /// Converts this structured problem into a general [`crate::lp::LinearProgram`]
    /// (variables ordered `R_0..R_{k-1}, E_0..E_{k-1}`), used to
    /// cross-validate BiGreedy against the simplex solver.
    pub fn to_linear_program(&self) -> crate::lp::LinearProgram {
        use crate::lp::{Constraint, LinearProgram, Relation};
        let k = self.groups.len();
        let nv = 2 * k;
        let mut objective = vec![0.0; nv];
        for (a, g) in self.groups.iter().enumerate() {
            objective[a] = g.cost_r;
            objective[k + a] = g.cost_e;
        }
        let mut constraints = Vec::with_capacity(2 + 2 * k);
        let mut recall_row = vec![0.0; nv];
        let mut prec_row = vec![0.0; nv];
        for (a, g) in self.groups.iter().enumerate() {
            recall_row[a] = g.recall_r;
            prec_row[a] = g.prec_r;
            prec_row[k + a] = g.prec_e;
        }
        constraints.push(Constraint {
            coeffs: recall_row,
            relation: Relation::Ge,
            rhs: self.recall_target,
        });
        constraints.push(Constraint {
            coeffs: prec_row,
            relation: Relation::Ge,
            rhs: self.precision_target,
        });
        for a in 0..k {
            // R_a <= 1
            let mut row = vec![0.0; nv];
            row[a] = 1.0;
            constraints.push(Constraint {
                coeffs: row,
                relation: Relation::Le,
                rhs: 1.0,
            });
            // E_a - R_a <= 0
            let mut row = vec![0.0; nv];
            row[k + a] = 1.0;
            row[a] = -1.0;
            constraints.push(Constraint {
                coeffs: row,
                relation: Relation::Le,
                rhs: 0.0,
            });
        }
        LinearProgram::new(objective, constraints)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of the paper's §1/§3: three groups of 1000
    /// tuples with selectivities 0.9 / 0.5 / 0.1, α = β = 0.9.
    fn paper_example(recall_target: f64, precision_target: f64) -> GreedyProblem {
        GreedyProblem::from_group_stats(
            &[1000.0, 1000.0, 1000.0],
            &[0.9, 0.5, 0.1],
            0.9,
            1.0,
            3.0,
            recall_target,
            precision_target,
        )
    }

    #[test]
    fn paper_example_zero_slack() {
        // With zero slack thresholds: recall target = beta * sum(t s) =
        // 0.9 * 1500 = 1350.
        let p = paper_example(1350.0, 0.0);
        let plan = p.solve().expect("feasible");
        // Greedy retrieves group 0 fully (900 recall mass), then covers the
        // remaining 450 with 450/500 of group 1 -> R_1 = 0.9.
        assert!((plan.r[0] - 1.0).abs() < 1e-9);
        assert!((plan.r[1] - 0.9).abs() < 1e-9);
        assert_eq!(plan.r[2], 0.0);
        // At alpha = 0.9, the retrieved mix (900 good : 100 bad in group 0
        // plus a 50/50 slice of group 1) misses precision, so Phase E must
        // evaluate the low-selectivity retrieved group. Solving
        // 45 + 450·E - 405 >= 0 gives E_1 = 0.8.
        assert!(p.precision_lhs(&plan.r, &plan.e) >= -1e-9);
        assert_eq!(plan.e[0], 0.0);
        assert!((plan.e[1] - 0.8).abs() < 1e-9, "e1={}", plan.e[1]);
        assert_eq!(plan.e[2], 0.0);
    }

    #[test]
    fn evaluations_rise_for_precision() {
        // Force a positive precision target so Phase E must engage.
        let p = paper_example(1350.0, 30.0);
        let plan = p.solve().expect("feasible");
        assert!(p.precision_lhs(&plan.r, &plan.e) >= 30.0 - 1e-9);
        // Evaluations must start at the lowest-selectivity retrieved group
        // (group 1 here, since group 2 is not retrieved).
        assert!(plan.e[1] > 0.0);
        assert_eq!(plan.e[0], 0.0);
        assert!(plan.e[1] <= plan.r[1] + 1e-12);
    }

    #[test]
    fn recall_unreachable_reported() {
        let p = paper_example(1501.0, 0.0); // total recall mass is 1500
        assert_eq!(p.solve(), Err(GreedyError::RecallUnreachable));
    }

    #[test]
    fn precision_unreachable_reported() {
        // Precision target above what full evaluation of retrieved groups
        // can deliver.
        let p = paper_example(1350.0, 1e9);
        assert_eq!(p.solve(), Err(GreedyError::PrecisionUnreachable));
    }

    #[test]
    fn zero_targets_mean_zero_cost() {
        let p = paper_example(0.0, 0.0);
        let plan = p.solve().expect("feasible");
        assert_eq!(plan.cost, 0.0);
        assert_eq!(plan.r, vec![0.0; 3]);
    }

    #[test]
    fn plan_respects_bounds() {
        let p = paper_example(1400.0, 120.0);
        let plan = p.solve().expect("feasible");
        for a in 0..3 {
            assert!(plan.r[a] >= 0.0 && plan.r[a] <= 1.0);
            assert!(plan.e[a] >= 0.0 && plan.e[a] <= plan.r[a] + 1e-12);
        }
    }

    #[test]
    fn matches_simplex_on_paper_example() {
        let p = paper_example(1350.0, 50.0);
        let greedy = p.solve().expect("feasible");
        match p.to_linear_program().solve() {
            crate::lp::LpOutcome::Optimal(s) => {
                assert!(
                    (greedy.cost - s.objective).abs() < 1e-6 * (1.0 + s.objective.abs()),
                    "greedy {} vs simplex {}",
                    greedy.cost,
                    s.objective
                );
            }
            other => panic!("simplex failed: {other:?}"),
        }
    }

    #[test]
    fn cost_accounting_is_consistent() {
        let p = paper_example(1350.0, 40.0);
        let plan = p.solve().expect("feasible");
        assert!((p.cost(&plan.r, &plan.e) - plan.cost).abs() < 1e-9);
    }

    /// The regime the paper's Theorem 3.8 preconditions exclude: precision
    /// must be reached by *over-retrieving* a high-selectivity group, which
    /// the literal two-phase greedy cannot express. The robust wrapper must
    /// catch it via the LP fallback.
    #[test]
    fn over_retrieval_regime_needs_fallback() {
        // One high-selectivity group; tiny recall target; precision target
        // reachable only by retrieving more than recall requires.
        let p = GreedyProblem::from_group_stats(
            &[100.0, 100.0],
            &[0.9, 0.6],
            0.5,
            1.0,
            3.0,
            1.0,  // recall: satisfied by a sliver of group 0
            30.0, // precision: needs R_0 well beyond that sliver
        );
        // prec_r for group 0 = 100*(0.9-0.5) = 40 > 30, so the LP is
        // feasible via retrieval alone…
        assert!(p.theorem_38_preconditions());
        // …but the literal greedy stops raising R once recall is met and
        // cannot reach the target with evaluations alone.
        assert_eq!(p.solve(), Err(GreedyError::PrecisionUnreachable));
        // The robust path recovers the optimum.
        let plan = p.solve_robust(false).expect("LP fallback must succeed");
        assert!(p.precision_lhs(&plan.r, &plan.e) >= 30.0 - 1e-9);
        assert!(p.recall_lhs(&plan.r) >= 1.0 - 1e-9);
        match p.to_linear_program().solve() {
            crate::lp::LpOutcome::Optimal(s) => {
                assert!((plan.cost - s.objective).abs() < 1e-6 * (1.0 + s.objective));
            }
            other => panic!("simplex failed: {other:?}"),
        }
    }

    #[test]
    fn robust_exact_agrees_with_greedy_in_standard_regime() {
        let p = paper_example(1350.0, 50.0);
        let greedy = p.solve().expect("feasible");
        let exact = p.solve_robust(true).expect("feasible");
        assert!(
            (greedy.cost - exact.cost).abs() < 1e-6 * (1.0 + exact.cost),
            "greedy {} vs exact {}",
            greedy.cost,
            exact.cost
        );
    }
}
