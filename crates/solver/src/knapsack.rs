//! Minimum knapsack, and the paper's NP-hardness reduction.
//!
//! Theorem 3.2 proves Problem 1 (perfect information) NP-hard by reducing
//! *minimum knapsack* to it: pick a subset `S'` with total value ≥ V
//! minimizing total weight. This module provides
//!
//! * an exact dynamic program for min-knapsack (integer values),
//! * a classic greedy 2-approximation, and
//! * [`reduce_to_perfect_info`], the constructive reduction from the
//!   paper's proof — tested end-to-end against the exact perfect-info
//!   solver to *demonstrate* the reduction rather than merely cite it.

use crate::perfect_info::{Decision, PerfectGroup, PerfectInfoInstance};

/// One knapsack item.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Weight (the quantity being minimized).
    pub weight: f64,
    /// Value (must reach the threshold).
    pub value: u64,
}

/// An exact min-knapsack solution.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// Chosen item indices (ascending).
    pub chosen: Vec<usize>,
    /// Total weight of the chosen set.
    pub total_weight: f64,
    /// Total value of the chosen set.
    pub total_value: u64,
}

/// Exact min-knapsack via DP over achievable value totals.
///
/// Returns `None` when even taking every item misses the threshold.
/// Runs in `O(n · V_max)` where `V_max = max(threshold, Σ value)` — fine
/// for the reduction-scale instances used in tests and demos.
pub fn solve_min_knapsack(items: &[Item], threshold: u64) -> Option<KnapsackSolution> {
    let total: u64 = items.iter().map(|i| i.value).sum();
    if total < threshold {
        return None;
    }
    if threshold == 0 {
        return Some(KnapsackSolution {
            chosen: vec![],
            total_weight: 0.0,
            total_value: 0,
        });
    }
    // Value overshoot is allowed, so cap the accumulated value at the
    // threshold: every overshoot state collapses into `cap`. A 2-D table
    // (items × capped value) keeps backtracking exact.
    let cap = threshold as usize;
    const INF: f64 = f64::INFINITY;
    let n = items.len();
    let mut dp = vec![vec![INF; cap + 1]; n + 1];
    dp[0][0] = 0.0;
    for (i, item) in items.iter().enumerate() {
        for v in 0..=cap {
            let base = dp[i][v];
            if base == INF {
                continue;
            }
            // Skip item i.
            if base < dp[i + 1][v] {
                dp[i + 1][v] = base;
            }
            // Take item i.
            let nv = (v + item.value as usize).min(cap);
            let nw = base + item.weight;
            if nw < dp[i + 1][nv] {
                dp[i + 1][nv] = nw;
            }
        }
    }
    if dp[n][cap] == INF {
        return None;
    }
    // Backtrack: prefer "skip" on ties so the chosen set stays minimal.
    let mut chosen = Vec::new();
    let mut v = cap;
    for i in (0..n).rev() {
        if dp[i][v] <= dp[i + 1][v] {
            continue; // item i skipped
        }
        // Item i was taken: find the exact predecessor state.
        let val = items[i].value as usize;
        let lo = if v == cap {
            v.saturating_sub(val)
        } else {
            v - val.min(v)
        };
        let mut found = None;
        for pv in lo..=v {
            let reaches = (pv + val).min(cap) == v;
            if reaches && (dp[i][pv] + items[i].weight - dp[i + 1][v]).abs() < 1e-9 {
                found = Some(pv);
                break;
            }
        }
        let pv = found.expect("DP backtrack must find a predecessor");
        chosen.push(i);
        v = pv;
    }
    chosen.reverse();
    let total_weight = chosen.iter().map(|&i| items[i].weight).sum();
    let total_value = chosen.iter().map(|&i| items[i].value).sum();
    debug_assert!(total_value >= threshold);
    Some(KnapsackSolution {
        chosen,
        total_weight,
        total_value,
    })
}

/// Greedy 2-approximation: take items by descending value density until
/// the threshold is met, then try to drop redundant items.
pub fn greedy_min_knapsack(items: &[Item], threshold: u64) -> Option<KnapsackSolution> {
    let total: u64 = items.iter().map(|i| i.value).sum();
    if total < threshold {
        return None;
    }
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        let da = items[a].value as f64 / items[a].weight.max(1e-12);
        let db = items[b].value as f64 / items[b].weight.max(1e-12);
        db.partial_cmp(&da).unwrap().then(a.cmp(&b))
    });
    let mut chosen = Vec::new();
    let mut value = 0u64;
    for &i in &order {
        if value >= threshold {
            break;
        }
        chosen.push(i);
        value += items[i].value;
    }
    // Drop pass: remove items whose value is pure surplus.
    let mut kept: Vec<usize> = Vec::with_capacity(chosen.len());
    let mut current = value;
    for &i in chosen.iter().rev() {
        if current - items[i].value >= threshold {
            current -= items[i].value;
        } else {
            kept.push(i);
        }
    }
    kept.sort_unstable();
    let total_weight = kept.iter().map(|&i| items[i].weight).sum();
    let total_value = kept.iter().map(|&i| items[i].value).sum();
    Some(KnapsackSolution {
        chosen: kept,
        total_weight,
        total_value,
    })
}

/// The constructive reduction of Theorem 3.2: min-knapsack → Problem 1.
///
/// Weights are scaled so `w_s > v_s` for every item (which leaves the
/// knapsack problem unchanged up to the same scale factor), then each item
/// becomes a group with `C_a = v_a`, `W_a = w'_a − v_a`, with `α = 0`,
/// `β = V / Σ C_a`, `o_e` arbitrary, `o_r = 1`. Returns the instance plus
/// the weight scale factor applied (so costs can be mapped back).
pub fn reduce_to_perfect_info(items: &[Item], threshold: u64) -> (PerfectInfoInstance, f64) {
    // Scale weights so that w > v strictly.
    let mut scale: f64 = 1.0;
    for item in items {
        if item.weight > 0.0 {
            let needed = (item.value as f64 + 1.0) / item.weight;
            scale = scale.max(needed);
        } else {
            // Zero-weight items: any positive scale keeps w=0 <= v; bump the
            // weight epsilon instead via max with tiny base below.
            scale = scale.max(1.0);
        }
    }
    let groups: Vec<PerfectGroup> = items
        .iter()
        .map(|item| {
            let w_scaled = (item.weight * scale).max(item.value as f64 + 1.0);
            PerfectGroup {
                correct: item.value,
                wrong: (w_scaled - item.value as f64).ceil().max(1.0) as u64,
            }
        })
        .collect();
    let total_correct: u64 = groups.iter().map(|g| g.correct).sum();
    let beta = if total_correct == 0 {
        0.0
    } else {
        threshold as f64 / total_correct as f64
    };
    (
        PerfectInfoInstance {
            groups,
            alpha: 0.0,
            beta: beta.min(1.0),
            cost_retrieve: 1.0,
            cost_evaluate: 3.0,
        },
        scale,
    )
}

/// Maps a Problem-1 decision vector back to a knapsack subset (the proof's
/// `S' = {a : R_a = 1}`).
pub fn decisions_to_subset(decisions: &[Decision]) -> Vec<usize> {
    decisions
        .iter()
        .enumerate()
        .filter(|(_, d)| !matches!(d, Decision::Discard))
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(spec: &[(f64, u64)]) -> Vec<Item> {
        spec.iter()
            .map(|&(weight, value)| Item { weight, value })
            .collect()
    }

    #[test]
    fn exact_small_instance() {
        // Items: (w=3,v=4), (w=2,v=3), (w=4,v=6); need value >= 7.
        // Options: {0,1} w=5 v=7; {0,2} w=7; {1,2} w=6 v=9; {2} v=6 no.
        let sol = solve_min_knapsack(&items(&[(3.0, 4), (2.0, 3), (4.0, 6)]), 7).unwrap();
        assert_eq!(sol.total_weight, 5.0);
        assert_eq!(sol.chosen, vec![0, 1]);
        assert!(sol.total_value >= 7);
    }

    #[test]
    fn infeasible_returns_none() {
        assert!(solve_min_knapsack(&items(&[(1.0, 2)]), 3).is_none());
        assert!(greedy_min_knapsack(&items(&[(1.0, 2)]), 3).is_none());
    }

    #[test]
    fn zero_threshold_is_free() {
        let sol = solve_min_knapsack(&items(&[(5.0, 5)]), 0).unwrap();
        assert_eq!(sol.total_weight, 0.0);
        assert!(sol.chosen.is_empty());
    }

    #[test]
    fn greedy_meets_threshold_and_is_bounded() {
        let its = items(&[(4.0, 5), (3.0, 4), (2.0, 1), (7.0, 9), (1.0, 1)]);
        let exact = solve_min_knapsack(&its, 10).unwrap();
        let greedy = greedy_min_knapsack(&its, 10).unwrap();
        assert!(greedy.total_value >= 10);
        assert!(greedy.total_weight + 1e-9 >= exact.total_weight);
        // Density-greedy with drop pass is a 2-approximation on such
        // instances.
        assert!(greedy.total_weight <= 2.0 * exact.total_weight + 1e-9);
    }

    #[test]
    fn reduction_preserves_optimum() {
        let its = items(&[(3.0, 4), (2.0, 3), (4.0, 6), (6.0, 5)]);
        let threshold = 9;
        let exact = solve_min_knapsack(&its, threshold).unwrap();

        let (instance, scale) = reduce_to_perfect_info(&its, threshold);
        let solution = instance.solve_exact().expect("reduction must be feasible");
        let subset = decisions_to_subset(&solution.decisions);
        let subset_value: u64 = subset.iter().map(|&i| its[i].value).sum();
        assert!(
            subset_value >= threshold,
            "reduction subset misses threshold"
        );

        // The reduced instance's retrieval cost of a group is (C_a + W_a) =
        // ceil(scale * w_a); minimizing it minimizes the (scaled) weight.
        let subset_weight: f64 = subset.iter().map(|&i| its[i].weight).sum();
        assert!(
            subset_weight <= exact.total_weight + subset.len() as f64 / scale + 1e-6,
            "reduction weight {} vs exact {}",
            subset_weight,
            exact.total_weight
        );
    }

    #[test]
    fn decisions_to_subset_filters_discards() {
        use Decision::*;
        let subset = decisions_to_subset(&[Discard, Return, Evaluate, Discard]);
        assert_eq!(subset, vec![1, 2]);
    }
}
