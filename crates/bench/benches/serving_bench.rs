//! Serving-tier load generator: real TCP clients against an in-process
//! `expred-serve` instance.
//!
//! ```text
//! cargo bench --bench serving_bench            # full run
//! cargo bench --bench serving_bench -- --smoke # CI proof (same
//!                                              # workload, perf
//!                                              # assertions relaxed)
//! ```
//!
//! Three scenarios (→ `BENCH_serving.json`):
//!
//! * `zipf_mixed` — N tenant threads, each replaying a zipf-skewed mix
//!   of tables and query kinds (popular queries repeat, so the memo and
//!   cross-query cache carry real weight) over one keep-alive
//!   connection. The same per-tenant plans are also replayed via direct
//!   [`QueryEngine::submit`] on the same thread layout — the `http` row's
//!   `speedup_vs_baseline` is the full TCP+parse+render tax (a value
//!   below 1.0 is the expected overhead, not a regression).
//! * `cache_churn` — adversary mode: every tenant cycles through more
//!   table seeds than its LRU bound holds, so tables regenerate
//!   constantly and the engine caches stay cold. This prices the worst
//!   case the serving tier admits.
//! * `saturation_cap1` — one in-flight slot and a 1ms UDF: most requests
//!   must be shed with 429 in constant time while the admitted ones
//!   complete. The artifact row is the shed rate; exact conservation
//!   (`attempts == 200s + 429s`, `engine queries == 200s`) is asserted,
//!   not measured.
//!
//! Value semantics per row: `ns_per_probe` holds per-query nanoseconds
//! for backends, latency nanoseconds for `*_p50_ns`/`*_p99_ns` rows,
//! queries/sec for `queries_per_sec`, and a percentage for
//! `shed_rate_pct`.
//!
//! [`QueryEngine::submit`]: expred_core::QueryEngine::submit

use expred_bench::BenchReport;
use expred_core::{
    CorrelationModel, IntelSampleConfig, PredictorChoice, QueryEngine, QueryRequest, QuerySpec,
    SampleSizeRule,
};
use expred_serve::{serve, HttpClient, ServeConfig, TableKey};
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, DatasetSpec, LENDING_CLUB, PROSPER};
use std::collections::HashMap;
use std::time::{Duration, Instant};

const CLIENTS: usize = 6;

/// Zipf(s) sampler over ranks `0..n` — rank 0 is the most popular.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    fn sample(&self, rng: &mut Prng) -> usize {
        let target = rng.f64() * self.cumulative.last().copied().unwrap_or(1.0);
        self.cumulative
            .iter()
            .position(|&c| target <= c)
            .unwrap_or(self.cumulative.len() - 1)
    }
}

/// One planned request: everything needed to issue it over HTTP *and*
/// replay it via direct submit.
#[derive(Clone)]
struct PlannedQuery {
    table: TableKey,
    kind: usize,
    seed: u64,
}

const KINDS: [&str; 4] = ["naive", "intel_sample", "optimal", "learning"];

impl PlannedQuery {
    fn body(&self, tenant: &str) -> String {
        let kind = KINDS[self.kind];
        let predictor = match kind {
            "intel_sample" | "optimal" => ",\"predictor\":\"grade\"",
            _ => "",
        };
        format!(
            "{{\"tenant\":\"{tenant}\",\
             \"table\":{{\"spec\":\"{}\",\"rows\":{},\"seed\":{}}},\
             \"seed\":{},\"query\":{{\"kind\":\"{kind}\"{predictor}}}}}",
            self.table.spec, self.table.rows, self.table.seed, self.seed
        )
    }

    fn request(&self) -> QueryRequest {
        let spec = QuerySpec::paper_default();
        match KINDS[self.kind] {
            "naive" => QueryRequest::naive(spec),
            "learning" => QueryRequest::learning(spec),
            "optimal" => QueryRequest::optimal(spec, "grade"),
            _ => QueryRequest::intel_sample(IntelSampleConfig {
                spec,
                rule: SampleSizeRule::Fraction(0.05),
                corr: CorrelationModel::Independent,
                predictor: PredictorChoice::Fixed("grade".into()),
            }),
        }
        .with_seed(self.seed)
    }
}

/// A zipf-skewed plan per client: `table_seeds` ranks the table pool,
/// query kinds and repeat-seeds get their own skews.
fn make_plans(
    requests_per_client: usize,
    table_seeds: usize,
    rows: usize,
) -> Vec<Vec<PlannedQuery>> {
    let table_pick = Zipf::new(table_seeds, 1.2);
    let kind_pick = Zipf::new(KINDS.len(), 1.0);
    let seed_pick = Zipf::new(4, 1.5);
    (0..CLIENTS)
        .map(|client| {
            let mut rng = Prng::seeded(1_000 + client as u64);
            (0..requests_per_client)
                .map(|_| {
                    let table_rank = table_pick.sample(&mut rng);
                    let spec = if table_rank.is_multiple_of(2) {
                        "prosper"
                    } else {
                        "lc"
                    };
                    PlannedQuery {
                        table: TableKey {
                            spec: spec.into(),
                            rows,
                            seed: table_rank as u64,
                        },
                        kind: kind_pick.sample(&mut rng),
                        seed: seed_pick.sample(&mut rng) as u64,
                    }
                })
                .collect()
        })
        .collect()
}

struct HttpRun {
    wall: Duration,
    latencies: Vec<Duration>,
    ok: usize,
    shed: usize,
}

/// Replays every client plan over its own keep-alive connection,
/// one thread per client.
fn run_http(addr: std::net::SocketAddr, plans: &[Vec<PlannedQuery>]) -> HttpRun {
    let start = Instant::now();
    let per_client: Vec<(Vec<Duration>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .enumerate()
            .map(|(client, plan)| {
                scope.spawn(move || {
                    let tenant = format!("tenant-{client}");
                    let mut http = HttpClient::connect(addr).expect("connect");
                    let mut latencies = Vec::with_capacity(plan.len());
                    let (mut ok, mut shed) = (0, 0);
                    for query in plan {
                        let sent = Instant::now();
                        let response = http.post("/query", &query.body(&tenant)).expect("post");
                        latencies.push(sent.elapsed());
                        match response.status {
                            200 => ok += 1,
                            429 => shed += 1,
                            other => panic!("unexpected status {other}: {}", response.body_text()),
                        }
                    }
                    (latencies, ok, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = start.elapsed();
    let mut latencies = Vec::new();
    let (mut ok, mut shed) = (0, 0);
    for (l, o, s) in per_client {
        latencies.extend(l);
        ok += o;
        shed += s;
    }
    HttpRun {
        wall,
        latencies,
        ok,
        shed,
    }
}

/// Replays the same plans via direct submit on the same thread layout:
/// one engine and one table instance per (tenant, key), like the server.
fn run_direct(plans: &[Vec<PlannedQuery>]) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for plan in plans {
            scope.spawn(move || {
                let engine = QueryEngine::new();
                let mut tables: HashMap<TableKey, Dataset> = HashMap::new();
                for query in plan {
                    let ds = tables.entry(query.table.clone()).or_insert_with(|| {
                        let base = if query.table.spec == "prosper" {
                            PROSPER
                        } else {
                            LENDING_CLUB
                        };
                        Dataset::generate(
                            DatasetSpec {
                                rows: query.table.rows,
                                ..base
                            },
                            query.table.seed,
                        )
                    });
                    engine.submit(ds, &query.request()).expect("direct submit");
                }
            });
        }
    });
    start.elapsed()
}

fn quantile_ns(latencies: &mut [Duration], q: f64) -> f64 {
    latencies.sort_unstable();
    let idx = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len()) - 1;
    latencies[idx].as_nanos() as f64
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("serving");
    println!(
        "serving_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    // -- zipf_mixed ------------------------------------------------------
    let plans = make_plans(40, 4, 300);
    let total: usize = plans.iter().map(Vec::len).sum();
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_rows: 5_000,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut mixed = run_http(handle.local_addr(), &plans);
    assert_eq!(mixed.ok, total, "no request may fail in the mixed scenario");
    // Conservation: every 200 is exactly one engine query, across tenants.
    let engine_queries: u64 = handle
        .tenants()
        .snapshot()
        .iter()
        .map(|t| t.engine().stats().queries)
        .sum();
    assert_eq!(engine_queries, total as u64);
    let direct = run_direct(&plans);

    let http_ns = mixed.wall.as_nanos() as f64 / total as f64;
    let direct_ns = direct.as_nanos() as f64 / total as f64;
    let qps = total as f64 / mixed.wall.as_secs_f64();
    let p50 = quantile_ns(&mut mixed.latencies, 0.50);
    let p99 = quantile_ns(&mut mixed.latencies, 0.99);
    report.record("zipf_mixed", "direct_submit", direct_ns, 1.0);
    report.record("zipf_mixed", "http", http_ns, direct_ns / http_ns);
    report.record("zipf_mixed", "http_p50_ns", p50, 1.0);
    report.record("zipf_mixed", "http_p99_ns", p99, 1.0);
    report.record("zipf_mixed", "queries_per_sec", qps, 1.0);
    println!(
        "zipf_mixed: {total} queries, {CLIENTS} tenants | direct {direct_ns:>9.0} ns/q | \
         http {http_ns:>9.0} ns/q | p50 {:.2}ms p99 {:.2}ms | {qps:.0} q/s",
        p50 / 1e6,
        p99 / 1e6
    );
    assert!(
        smoke || http_ns < direct_ns * 50.0,
        "HTTP tax blew past 50x the direct path: {http_ns:.0} vs {direct_ns:.0} ns/q"
    );
    drop(handle);

    // -- cache_churn -----------------------------------------------------
    // 12 table seeds against an LRU of 2: nearly every query regenerates
    // its table and starts cold.
    let churn_plans = make_plans(25, 12, 300);
    let churn_total: usize = churn_plans.iter().map(Vec::len).sum();
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_rows: 5_000,
            max_tables_per_tenant: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut churn = run_http(handle.local_addr(), &churn_plans);
    assert_eq!(churn.ok, churn_total);
    let churn_ns = churn.wall.as_nanos() as f64 / churn_total as f64;
    let churn_p99 = quantile_ns(&mut churn.latencies, 0.99);
    report.record("cache_churn", "http", churn_ns, http_ns / churn_ns);
    report.record("cache_churn", "http_p99_ns", churn_p99, 1.0);
    println!(
        "cache_churn: {churn_total} queries | http {churn_ns:>9.0} ns/q | p99 {:.2}ms",
        churn_p99 / 1e6
    );
    drop(handle);

    // -- saturation_cap1 -------------------------------------------------
    // One slot, 1ms per fresh evaluation: concurrent clients must mostly
    // shed, and every shed answer must cost the engine nothing.
    let handle = serve(
        "127.0.0.1:0",
        ServeConfig {
            max_rows: 5_000,
            max_in_flight: 1,
            udf_latency: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    // All clients hammer one tenant's identical slow query; distinct
    // request seeds defeat the result memo so each admitted query holds
    // the slot for real.
    let sat_plans: Vec<Vec<PlannedQuery>> = (0..CLIENTS)
        .map(|client| {
            (0..10u64)
                .map(|step| PlannedQuery {
                    table: TableKey {
                        spec: "prosper".into(),
                        rows: 200,
                        seed: 0,
                    },
                    kind: 0,
                    seed: client as u64 * 100 + step,
                })
                .collect()
        })
        .collect();
    let sat_total: usize = sat_plans.iter().map(Vec::len).sum();
    let sat = run_http(handle.local_addr(), &sat_plans);
    assert_eq!(sat.ok + sat.shed, sat_total, "every attempt was answered");
    assert_eq!(handle.gate().shed(), sat.shed as u64);
    // Shed requests never reached an engine: exact conservation.
    let engine_queries: u64 = handle
        .tenants()
        .snapshot()
        .iter()
        .map(|t| t.engine().stats().queries)
        .sum();
    assert_eq!(engine_queries, sat.ok as u64);
    let shed_rate = 100.0 * sat.shed as f64 / sat_total as f64;
    report.record("saturation_cap1", "shed_rate_pct", shed_rate, 1.0);
    report.record("saturation_cap1", "completed", sat.ok as f64, 1.0);
    println!(
        "saturation_cap1: {sat_total} attempts -> {} completed, {} shed ({shed_rate:.0}%)",
        sat.ok, sat.shed
    );
    assert!(
        smoke || sat.shed > 0,
        "a single-slot server under {CLIENTS} concurrent clients must shed"
    );

    let path = report.write().expect("write artifact");
    println!("wrote {}", path.display());
}
