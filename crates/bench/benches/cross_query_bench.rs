//! Cross-query cache benchmarks: repeated and overlapping workloads.
//!
//! The serving story of the session layer is that repeated/overlapping
//! traffic stops re-paying `o_e`. Two workload shapes:
//!
//! * **Repeated** — the identical query resubmitted to one
//!   [`QueryEngine`]; the result memo answers it without touching the
//!   UDF.
//! * **Overlapping** — two different queries whose row sets overlap; the
//!   row-tier [`CacheStore`] pays `o_e` only for the fresh rows. With a
//!   100µs UDF, `overlap_speedup_report` measures the second query cold
//!   vs warm and asserts the ≥2x win the ROADMAP promised.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use expred_core::engine::{Query, QueryEngine};
use expred_core::QuerySpec;
use expred_exec::{CacheStore, ExecContext, Sequential};
use expred_table::datasets::{Dataset, DatasetSpec, LABEL_COLUMN, PROSPER};
use expred_udf::{OracleUdf, SlowUdf, UdfInvoker};
use std::hint::black_box;
use std::time::{Duration, Instant};

const UDF_LATENCY: Duration = Duration::from_micros(100);

fn dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec {
            rows: 4_000,
            ..PROSPER
        },
        1,
    )
}

/// The identical query, resubmitted: cold engine every iteration vs one
/// long-lived engine.
fn bench_repeated_query(c: &mut Criterion) {
    let ds = dataset();
    let spec = QuerySpec::paper_default();
    let mut group = c.benchmark_group("repeated_naive_query");
    group.throughput(Throughput::Elements(ds.table.num_rows() as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("cold_engine_each_time"), |b| {
        b.iter(|| {
            let engine = QueryEngine::new();
            black_box(engine.run(&ds, &Query::Naive(spec), 7))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("one_session"), |b| {
        let engine = QueryEngine::new();
        engine.run(&ds, &Query::Naive(spec), 7); // warm once
        b.iter(|| black_box(engine.run(&ds, &Query::Naive(spec), 7)))
    });
    group.finish();
}

/// Two overlapping β-fraction workloads over a 100µs UDF, second query
/// timed cold vs warm.
fn overlapping_batches(n: usize) -> (Vec<usize>, Vec<usize>) {
    // 75% overlap: query A covers [0, n), query B covers [n/4, n + n/4).
    let a: Vec<usize> = (0..n).collect();
    let b: Vec<usize> = (n / 4..n + n / 4).collect();
    (a, b)
}

fn overlap_speedup_report(c: &mut Criterion) {
    let ds = dataset();
    let udf = SlowUdf::new(OracleUdf::new(LABEL_COLUMN), UDF_LATENCY);
    let (first, second) = overlapping_batches(1_024);

    // Cold: the second query pays the full 1024 slow calls.
    let cold_store = CacheStore::new();
    let cold_ctx = ExecContext::sequential().with_cache(&cold_store);
    let cold_inv = UdfInvoker::with_context(&udf, &ds.table, &cold_ctx);
    let start = Instant::now();
    let cold_answers = cold_inv.retrieve_and_evaluate_batch(&Sequential, &second);
    let cold_secs = start.elapsed().as_secs_f64();

    // Warm: query one runs first and shares the session store.
    let warm_store = CacheStore::new();
    let warm_ctx = ExecContext::sequential().with_cache(&warm_store);
    UdfInvoker::with_context(&udf, &ds.table, &warm_ctx)
        .retrieve_and_evaluate_batch(&Sequential, &first);
    let warm_inv = UdfInvoker::with_context(&udf, &ds.table, &warm_ctx);
    let start = Instant::now();
    let warm_answers = warm_inv.retrieve_and_evaluate_batch(&Sequential, &second);
    let warm_secs = start.elapsed().as_secs_f64();

    assert_eq!(cold_answers, warm_answers, "reuse must not change answers");
    let warm_counts = warm_inv.counts();
    assert_eq!(
        warm_counts.evaluated + warm_counts.reuse_hits,
        cold_inv.counts().evaluated,
        "ledger: fresh + reused == cache-less fresh"
    );
    let ratio = cold_secs / warm_secs;
    println!(
        "overlap_speedup_report: second query cold {cold_secs:.3}s, warm {warm_secs:.3}s \
         ({} of {} rows reused) -> {ratio:.1}x",
        warm_counts.reuse_hits,
        second.len(),
    );
    assert!(
        ratio >= 2.0,
        "expected >= 2x on a 75%-overlap workload, got {ratio:.2}x"
    );
    c.bench_function("overlap_speedup_report/noop", |b| b.iter(|| black_box(0)));
}

/// Session statistics over a mixed workload — prints the row-tier stats
/// so regressions in hit rate are visible in bench logs.
fn session_stats_report(c: &mut Criterion) {
    let ds = dataset();
    let spec = QuerySpec::paper_default();
    let engine = QueryEngine::new();
    for seed in 0..4 {
        engine.run(&ds, &Query::Naive(spec), seed);
    }
    engine.run(
        &ds,
        &Query::Optimal {
            spec,
            predictor: "grade".into(),
        },
        0,
    );
    let counts = engine.session_counts();
    println!(
        "session_stats_report: {counts}; cache {:?}; engine {:?}",
        engine.cache_stats(),
        engine.stats()
    );
    assert!(counts.reuse_hits > 0);
    c.bench_function("session_stats_report/noop", |b| b.iter(|| black_box(0)));
}

criterion_group!(
    benches,
    bench_repeated_query,
    overlap_speedup_report,
    session_stats_report
);
criterion_main!(benches);
