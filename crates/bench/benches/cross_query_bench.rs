//! Cross-query cache benchmarks: repeated and overlapping workloads.
//!
//! ```text
//! cargo bench --bench cross_query_bench            # full run
//! cargo bench --bench cross_query_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! The serving story of the session layer is that repeated/overlapping
//! traffic stops re-paying `o_e`. Scenarios (→ `BENCH_cross_query.json`):
//!
//! * `repeated_naive_query` — the identical query resubmitted: a cold
//!   engine per iteration vs one long-lived session whose result memo
//!   answers the repeat without touching the UDF.
//! * `overlap_75pct_udf_100us` — two different queries whose row sets
//!   overlap 75%, over a 100µs UDF; the second query timed cold vs warm.
//!   The warm row must clear the ≥2x win the ROADMAP promised (asserted
//!   in full mode), with the reuse ledger verified exactly.

use expred_bench::{report::measure_ns_per_unit, BenchReport};
use expred_core::engine::QueryEngine;
use expred_core::{QueryRequest, QuerySpec};
use expred_exec::{CacheStore, ExecContext, Sequential};
use expred_table::datasets::{Dataset, DatasetSpec, LABEL_COLUMN, PROSPER};
use expred_udf::{OracleUdf, SlowUdf, UdfInvoker};
use std::hint::black_box;
use std::time::{Duration, Instant};

const UDF_LATENCY: Duration = Duration::from_micros(100);

fn dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec {
            rows: 4_000,
            ..PROSPER
        },
        1,
    )
}

/// 75% overlap: query A covers [0, n), query B covers [n/4, n + n/4).
fn overlapping_batches(n: usize) -> (Vec<usize>, Vec<usize>) {
    let a: Vec<usize> = (0..n).collect();
    let b: Vec<usize> = (n / 4..n + n / 4).collect();
    (a, b)
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("cross_query");
    println!(
        "cross_query_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );
    let ds = dataset();
    let spec = QuerySpec::paper_default();
    let rows = ds.table.num_rows() as u64;

    // Repeated identical query: cold engine each time vs one session.
    // The request is built once, outside the timed loops.
    let naive = QueryRequest::naive(spec).with_seed(7);
    let reps = if smoke { 3 } else { 10 };
    let cold_ns = measure_ns_per_unit(rows, reps, || {
        let engine = QueryEngine::new();
        black_box(engine.submit(&ds, &naive).expect("naive submit"));
    });
    let warm_engine = QueryEngine::new();
    warm_engine.submit(&ds, &naive).expect("warm once");
    let warm_ns = measure_ns_per_unit(rows, reps, || {
        black_box(warm_engine.submit(&ds, &naive).expect("memoized submit"));
    });
    report.record(
        "repeated_naive_query",
        "cold_engine_each_time",
        cold_ns,
        1.0,
    );
    report.record(
        "repeated_naive_query",
        "one_session",
        warm_ns,
        cold_ns / warm_ns,
    );
    println!(
        "repeated_naive_query        cold {cold_ns:>8.1} ns/row | memoized {warm_ns:>8.1} \
         ns/row ({:.0}x)",
        cold_ns / warm_ns
    );

    // Overlapping 100µs-UDF workloads: second query cold vs warm.
    let udf = SlowUdf::new(OracleUdf::new(LABEL_COLUMN), UDF_LATENCY);
    let (first, second) = overlapping_batches(if smoke { 256 } else { 1_024 });

    // Cold: the second query pays every slow call itself.
    let cold_store = CacheStore::new();
    let cold_ctx = ExecContext::sequential().with_cache(&cold_store);
    let cold_inv = UdfInvoker::with_context(&udf, &ds.table, &cold_ctx);
    let start = Instant::now();
    let cold_answers = cold_inv.retrieve_and_evaluate_batch(&Sequential, &second);
    let cold_secs = start.elapsed().as_secs_f64();

    // Warm: query one runs first and shares the session store.
    let warm_store = CacheStore::new();
    let warm_ctx = ExecContext::sequential().with_cache(&warm_store);
    UdfInvoker::with_context(&udf, &ds.table, &warm_ctx)
        .retrieve_and_evaluate_batch(&Sequential, &first);
    let warm_inv = UdfInvoker::with_context(&udf, &ds.table, &warm_ctx);
    let start = Instant::now();
    let warm_answers = warm_inv.retrieve_and_evaluate_batch(&Sequential, &second);
    let warm_secs = start.elapsed().as_secs_f64();

    assert_eq!(cold_answers, warm_answers, "reuse must not change answers");
    let warm_counts = warm_inv.counts();
    assert_eq!(
        warm_counts.evaluated + warm_counts.reuse_hits,
        cold_inv.counts().evaluated,
        "ledger: fresh + reused == cache-less fresh"
    );
    let ratio = cold_secs / warm_secs;
    let per_probe = |secs: f64| secs * 1e9 / second.len() as f64;
    report.record("overlap_75pct_udf_100us", "cold", per_probe(cold_secs), 1.0);
    report.record(
        "overlap_75pct_udf_100us",
        "warm",
        per_probe(warm_secs),
        ratio,
    );
    println!(
        "overlap_75pct_udf_100us     second query cold {cold_secs:.3}s, warm {warm_secs:.3}s \
         ({} of {} rows reused) -> {ratio:.1}x",
        warm_counts.reuse_hits,
        second.len(),
    );
    assert!(
        smoke || ratio >= 2.0,
        "expected >= 2x on a 75%-overlap workload, got {ratio:.2}x"
    );

    // Session statistics over a mixed workload — printed so regressions
    // in hit rate are visible in bench logs.
    let engine = QueryEngine::new();
    for seed in 0..4 {
        engine
            .submit(&ds, &QueryRequest::naive(spec).with_seed(seed))
            .expect("naive submit");
    }
    engine
        .submit(&ds, &QueryRequest::optimal(spec, "grade"))
        .expect("optimal submit");
    let counts = engine.session_counts();
    println!(
        "session_stats: {counts}; cache {:?}; engine {:?}",
        engine.cache_stats(),
        engine.stats()
    );
    assert!(counts.reuse_hits > 0);

    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
