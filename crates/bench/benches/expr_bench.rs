//! `expr_bench` — the selectivity-aware expression optimizer vs static
//! cost ordering, on skewed pypred-style workloads.
//!
//! ```text
//! cargo bench --bench expr_bench            # full run
//! cargo bench --bench expr_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! Each scenario is a DSL string parsed with [`parse_predicate`] over
//! three bool columns with very different pass rates (`rare` ≈1%, `mid`
//! 50%, `common` 90%), written in the *pessimal* order so the static
//! stage order (equal declared costs ⇒ written order) pays full freight:
//!
//! * `and_skew` — `"common and rare"`: AND should probe the rare
//!   conjunct first.
//! * `or_skew` — `"rare or common"`: OR should probe the likely-accepting
//!   disjunct first.
//! * `dnf` — `"(common and rare) or (common and mid)"`: Kim-style
//!   factoring hoists the shared `common` conjunct, then the reorder
//!   pass runs the cheap disjunction first.
//!
//! `static` submits [`QueryRequest::expr_scan`] (cost-ordered stages);
//! `learned` submits [`QueryRequest::expr_scan_optimized`] against an
//! engine whose selectivity tracker the priming run has warmed. Between
//! reps the engine's caches are cleared — the tracker survives by
//! design — so every rep pays fresh evaluations in its order.
//!
//! `ns_per_probe` is measured wall time per row; `speedup_vs_baseline`
//! on the `learned` rows is the *bill* ratio (static fresh evaluations /
//! learned fresh evaluations) — the paper's cost metric, deterministic
//! and noise-free, which is what the optimizer actually promises.
//! Results land in `BENCH_expr.json`.

use expred_bench::{report::measure_ns_per_unit, BenchReport};
use expred_core::{QueryEngine, QueryRequest};
use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
use expred_table::{DataType, Field, Schema, Table, Value};
use expred_udf::{parse_predicate, CostModel, OracleUdf, Pred, PredicateExpr};
use std::collections::HashMap;

/// Three bool columns with pass rates ≈1% (`rare`), 50% (`mid`), and
/// 90% (`common`); `rare` uses a period coprime to the others so every
/// pairwise overlap is non-degenerate.
fn workload_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("rare", DataType::Bool),
        Field::new("mid", DataType::Bool),
        Field::new("common", DataType::Bool),
    ]);
    let cells = (0..rows)
        .map(|i| {
            vec![
                Value::Bool(i % 97 == 0),
                Value::Bool(i % 2 == 0),
                Value::Bool(i % 10 != 0),
            ]
        })
        .collect();
    Table::from_rows(schema, cells).expect("schema matches rows")
}

fn registry() -> HashMap<String, PredicateExpr> {
    ["rare", "mid", "common"]
        .into_iter()
        .map(|col| (col.to_string(), Pred::udf(OracleUdf::new(col))))
        .collect()
}

fn main() {
    // `cargo test` probes bench binaries with --test; do nothing.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let rows = if smoke { 2_048 } else { 30_000 };
    let reps = if smoke { 2 } else { 20 };

    let ds = Dataset {
        table: workload_table(rows),
        spec: DatasetSpec {
            name: "expr_workload",
            rows,
            ..PROSPER
        },
        seed: 0,
    };
    let registry = registry();
    let cost = CostModel::PAPER_DEFAULT;

    let mut report = BenchReport::new("expr");
    println!(
        "expr_bench ({} mode): learned selectivity ordering vs static cost order, {rows} rows",
        if smoke { "smoke" } else { "full" }
    );
    let mut warnings = 0usize;

    for (scenario, predicate) in [
        ("and_skew", "common and rare"),
        ("or_skew", "rare or common"),
        ("dnf", "(common and rare) or (common and mid)"),
    ] {
        let expr = parse_predicate(predicate, &registry).expect("workload predicate parses");

        // Static: every rep pays the written/cost order from scratch.
        let engine = QueryEngine::new();
        let request = QueryRequest::expr_scan(expr.clone(), cost);
        let mut static_bill = 0u64;
        let static_ns = measure_ns_per_unit(rows as u64, reps, || {
            engine.clear_caches();
            static_bill = engine.submit(&ds, &request).unwrap().counts.evaluated;
        });

        // Learned: the priming call inside the measurer warms the
        // tracker; every timed rep then re-optimizes against the
        // accumulated observations.
        let engine = QueryEngine::new();
        let request = QueryRequest::expr_scan_optimized(expr, cost);
        let mut learned_bill = 0u64;
        let learned_ns = measure_ns_per_unit(rows as u64, reps, || {
            engine.clear_caches();
            learned_bill = engine.submit(&ds, &request).unwrap().counts.evaluated;
        });

        let bill_speedup = static_bill as f64 / learned_bill as f64;
        report.record(scenario, "static", static_ns, 1.0);
        report.record(scenario, "learned", learned_ns, bill_speedup);
        println!(
            "{scenario:<10} {predicate:<42} static {static_bill:>6} evals \
             ({static_ns:>7.1} ns/row) | learned {learned_bill:>6} evals \
             ({learned_ns:>7.1} ns/row) — {bill_speedup:.2}x cheaper",
        );
        if learned_bill > static_bill {
            println!(
                "WARNING: {scenario}: learned order billed more than static \
                 ({learned_bill} > {static_bill})"
            );
            warnings += 1;
        }
    }

    let path = report.write().expect("write BENCH_expr.json");
    println!("wrote {}", path.display());
    if warnings > 0 && !smoke {
        println!("{warnings} scenario(s) regressed; see WARNINGs above");
    }
}
