//! Concurrent-engine benchmarks: one shared `QueryEngine`, many threads.
//!
//! ```text
//! cargo bench --bench concurrent_engine_bench            # full run
//! cargo bench --bench concurrent_engine_bench -- --smoke # CI proof
//! ```
//!
//! Two serving shapes (→ `BENCH_concurrent_engine.json`):
//!
//! * `tenant_scaling_100us` — a 100µs-UDF workload (eight tenants, each
//!   querying its own table) through one shared engine, single-threaded
//!   vs 8 worker threads; the multi-thread run must win by ≥2x
//!   wall-clock (asserted in full mode). Disjoint tables isolate
//!   *engine* scalability: any shared-state contention (store borrow
//!   path, result memo, stats) shows up directly as lost speedup.
//! * `memoized_repeats` — warmed identities (one per thread) hammered
//!   from 1 vs 8 threads. The hit path holds no exclusive lock, so
//!   aggregate hit throughput under 8-way contention stays in the same
//!   band as single-threaded instead of collapsing.

use expred_bench::{report::measure_ns_per_unit, BenchReport};
use expred_core::engine::QueryEngine;
use expred_core::{QueryRequest, QuerySpec};
use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
use std::hint::black_box;
use std::time::{Duration, Instant};

const UDF_LATENCY: Duration = Duration::from_micros(100);
const THREADS: usize = 8;

fn tenant_datasets(rows: usize) -> Vec<Dataset> {
    (0..THREADS as u64)
        .map(|seed| Dataset::generate(DatasetSpec { rows, ..PROSPER }, seed))
        .collect()
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("concurrent_engine");
    println!(
        "concurrent_engine_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    // Eight tenants' naive queries through one engine: serial loop vs
    // one worker thread per tenant.
    let datasets = tenant_datasets(if smoke { 300 } else { 1_000 });
    let spec = QuerySpec::paper_default();
    let probes: u64 = datasets
        .iter()
        .map(|ds| (spec.beta * ds.table.num_rows() as f64).ceil() as u64)
        .sum();

    // One request, built outside every timed region.
    let naive = QueryRequest::naive(spec).with_seed(7);
    let serial_engine = QueryEngine::new().with_udf_latency(UDF_LATENCY);
    let start = Instant::now();
    for ds in &datasets {
        black_box(serial_engine.submit(ds, &naive).expect("serial submit"));
    }
    let serial = start.elapsed().as_secs_f64();

    let engine = QueryEngine::new().with_udf_latency(UDF_LATENCY);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for ds in &datasets {
            let (engine, naive) = (&engine, &naive);
            scope.spawn(move || black_box(engine.submit(ds, naive).expect("concurrent submit")));
        }
    });
    let concurrent = start.elapsed().as_secs_f64();

    let speedup = serial / concurrent;
    let per_probe = |secs: f64| secs * 1e9 / probes as f64;
    report.record("tenant_scaling_100us", "one_thread", per_probe(serial), 1.0);
    report.record(
        "tenant_scaling_100us",
        "eight_threads",
        per_probe(concurrent),
        speedup,
    );
    println!(
        "tenant_scaling_100us: serial {serial:.3}s, {THREADS} threads {concurrent:.3}s \
         -> {speedup:.1}x"
    );
    assert_eq!(serial_engine.session_counts(), engine.session_counts());
    assert!(
        smoke || speedup >= 2.0,
        "shared engine must scale on a {}µs UDF workload: got {speedup:.2}x",
        UDF_LATENCY.as_micros()
    );

    // Result-memo hit throughput, 1 thread vs 8 threads, per total hits.
    let ds = Dataset::generate(
        DatasetSpec {
            rows: 2_000,
            ..PROSPER
        },
        3,
    );
    let engine = QueryEngine::new();
    // Eight warmed identities — each "user" repeats their own request,
    // so concurrent hits spread across memo stripes instead of fighting
    // over one entry's lock and cache line.
    let requests: Vec<QueryRequest> = (0..THREADS as u64)
        .map(|t| QueryRequest::naive(spec).with_seed(7 + t))
        .collect();
    for req in &requests {
        engine.submit(&ds, req).expect("warm identity");
    }

    // Enough hits per iteration that thread spawn cost amortizes away.
    let hits: usize = if smoke { 512 } else { 4_096 };
    let reps = if smoke { 3 } else { 10 };
    let one_ns = measure_ns_per_unit(hits as u64, reps, || {
        for i in 0..hits {
            let req = &requests[i % requests.len()];
            black_box(engine.submit(&ds, req).expect("memo hit"));
        }
    });
    let eight_ns = measure_ns_per_unit(hits as u64, reps, || {
        std::thread::scope(|scope| {
            for req in &requests {
                let (engine, ds) = (&engine, &ds);
                scope.spawn(move || {
                    for _ in 0..hits / THREADS {
                        black_box(engine.submit(ds, req).expect("memo hit"));
                    }
                });
            }
        })
    });
    report.record("memoized_repeats", "one_thread", one_ns, 1.0);
    report.record(
        "memoized_repeats",
        "eight_threads",
        eight_ns,
        one_ns / eight_ns,
    );
    println!(
        "memoized_repeats: one_thread {one_ns:>8.0} ns/hit | eight_threads {eight_ns:>8.0} \
         ns/hit ({:.2}x)",
        one_ns / eight_ns
    );

    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
