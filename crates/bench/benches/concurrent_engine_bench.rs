//! Concurrent-engine benchmarks: one shared `QueryEngine`, many threads.
//!
//! Two serving shapes:
//!
//! * **Scaling** — `scaling_report` drives a 100µs-UDF workload (eight
//!   tenants, each querying its own table) through one shared engine,
//!   single-threaded vs 8 worker threads, and asserts the multi-thread
//!   run wins by ≥ 2x wall-clock. Disjoint tables isolate *engine*
//!   scalability: any shared-state contention (store borrow path, result
//!   memo, stats) would show up directly as lost speedup.
//! * **Memoized read path** — `memoized_throughput` hammers warmed
//!   identities (one per thread) from 1 vs 8 threads. The hit path holds
//!   no exclusive lock, so aggregate hit throughput under 8-way
//!   contention stays in the same band as single-threaded (~millions of
//!   hits/s) instead of collapsing; the residual gap is shared-counter
//!   cache traffic and allocator pressure from cloning outcomes, not
//!   serialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use expred_core::engine::{Query, QueryEngine};
use expred_core::QuerySpec;
use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
use std::hint::black_box;
use std::time::{Duration, Instant};

const UDF_LATENCY: Duration = Duration::from_micros(100);
const THREADS: usize = 8;

fn tenant_datasets() -> Vec<Dataset> {
    (0..THREADS as u64)
        .map(|seed| {
            Dataset::generate(
                DatasetSpec {
                    rows: 1_000,
                    ..PROSPER
                },
                seed,
            )
        })
        .collect()
}

/// Eight tenants' naive queries (≈800 rows × 100µs each) through one
/// engine: serial loop vs one worker thread per tenant.
fn scaling_report(_c: &mut Criterion) {
    let datasets = tenant_datasets();
    let spec = QuerySpec::paper_default();

    let serial_engine = QueryEngine::new().with_udf_latency(UDF_LATENCY);
    let start = Instant::now();
    for ds in &datasets {
        black_box(serial_engine.run(ds, &Query::Naive(spec), 7));
    }
    let serial = start.elapsed().as_secs_f64();

    let engine = QueryEngine::new().with_udf_latency(UDF_LATENCY);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for ds in &datasets {
            let engine = &engine;
            scope.spawn(move || black_box(engine.run(ds, &Query::Naive(spec), 7)));
        }
    });
    let concurrent = start.elapsed().as_secs_f64();

    let speedup = serial / concurrent;
    println!(
        "concurrent_engine scaling: serial {serial:.3}s, {THREADS} threads {concurrent:.3}s \
         -> {speedup:.1}x"
    );
    assert_eq!(serial_engine.session_counts(), engine.session_counts());
    assert!(
        speedup >= 2.0,
        "shared engine must scale on a {}µs UDF workload: got {speedup:.2}x",
        UDF_LATENCY.as_micros()
    );
}

/// Result-memo hit throughput, 1 thread vs 8 threads, per total hits.
fn memoized_throughput(c: &mut Criterion) {
    let ds = Dataset::generate(
        DatasetSpec {
            rows: 2_000,
            ..PROSPER
        },
        3,
    );
    let spec = QuerySpec::paper_default();
    let engine = QueryEngine::new();
    // Eight warmed identities — each "user" repeats their own request,
    // so concurrent hits spread across memo stripes instead of fighting
    // over one entry's lock and cache line.
    let seeds: Vec<u64> = (0..THREADS as u64).map(|t| 7 + t).collect();
    for &seed in &seeds {
        engine.run(&ds, &Query::Naive(spec), seed);
    }

    // Enough hits per iteration that thread spawn cost amortizes away.
    const HITS: usize = 4_096;
    let mut group = c.benchmark_group("memoized_repeats");
    group.throughput(Throughput::Elements(HITS as u64));
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("one_thread"), |b| {
        b.iter(|| {
            for i in 0..HITS {
                let seed = seeds[i % seeds.len()];
                black_box(engine.run(&ds, &Query::Naive(spec), seed));
            }
        })
    });
    group.bench_function(BenchmarkId::from_parameter("eight_threads"), |b| {
        b.iter(|| {
            std::thread::scope(|scope| {
                for &seed in &seeds {
                    let (engine, ds) = (&engine, &ds);
                    scope.spawn(move || {
                        for _ in 0..HITS / THREADS {
                            black_box(engine.run(ds, &Query::Naive(spec), seed));
                        }
                    });
                }
            })
        })
    });
    group.finish();
}

criterion_group!(benches, scaling_report, memoized_throughput);
criterion_main!(benches);
