//! Solver micro-benchmarks: the paper's `O(|A| log |A|)` BiGreedy
//! algorithm against the general simplex, across group counts.
//!
//! ```text
//! cargo bench --bench solver_bench            # full run
//! cargo bench --bench solver_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! Expected shape: BiGreedy stays microseconds out to thousands of groups
//! while the dense simplex grows superlinearly — the reason Theorem 3.8
//! matters. Results land in `BENCH_solver.json` (`ns_per_probe` is ns per
//! group; `bigreedy` is the per-scenario baseline, so the simplex rows'
//! `speedup_vs_baseline` is BiGreedy's advantage inverted — well under 1).

use expred_bench::{report::measure_ns_per_unit, BenchReport};
use expred_solver::bigreedy::GreedyProblem;
use expred_stats::rng::Prng;
use std::hint::black_box;

/// A reproducible structured instance with `k` groups.
fn instance(k: usize, seed: u64) -> GreedyProblem {
    let mut rng = Prng::seeded(seed);
    let sizes: Vec<f64> = (0..k).map(|_| 50.0 + rng.f64() * 2000.0).collect();
    let sels: Vec<f64> = (0..k).map(|_| 0.05 + 0.9 * rng.f64()).collect();
    let alpha = 0.8;
    let recall_mass: f64 = sizes.iter().zip(&sels).map(|(t, s)| t * s).sum();
    let prec_cap: f64 = sizes
        .iter()
        .zip(&sels)
        .map(|(t, s)| (t * (s - alpha)).max(0.0))
        .sum();
    GreedyProblem::from_group_stats(
        &sizes,
        &sels,
        alpha,
        1.0,
        3.0,
        0.8 * recall_mass,
        0.5 * prec_cap,
    )
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("solver");
    println!(
        "solver_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    let sizes: &[usize] = if smoke {
        &[16, 256]
    } else {
        &[16, 64, 256, 1024]
    };
    let reps = if smoke { 5 } else { 20 };
    for &k in sizes {
        let problem = instance(k, 42);
        let scenario = format!("structured_lp_{k}");
        let greedy_ns = measure_ns_per_unit(k as u64, reps, || {
            let _ = black_box(problem.solve());
        });
        report.record(&scenario, "bigreedy", greedy_ns, 1.0);
        // The simplex path is only affordable at smaller sizes.
        if k <= 256 {
            let lp = problem.to_linear_program();
            let simplex_ns = measure_ns_per_unit(k as u64, reps, || {
                black_box(lp.solve());
            });
            report.record(&scenario, "simplex", simplex_ns, greedy_ns / simplex_ns);
            println!(
                "{scenario:<22} bigreedy {greedy_ns:>10.0} ns/group | simplex \
                 {simplex_ns:>12.0} ns/group ({:.0}x slower)",
                simplex_ns / greedy_ns
            );
        } else {
            println!("{scenario:<22} bigreedy {greedy_ns:>10.0} ns/group");
        }
    }

    // BiGreedy alone at scale: near-linear ns/group is the claim.
    let scaling: &[usize] = if smoke { &[4096] } else { &[4096, 16384] };
    for &k in scaling {
        let problem = instance(k, 7);
        let scenario = format!("bigreedy_scaling_{k}");
        let ns = measure_ns_per_unit(k as u64, reps.min(10), || {
            let _ = black_box(problem.solve());
        });
        report.record(&scenario, "bigreedy", ns, 1.0);
        println!("{scenario:<22} bigreedy {ns:>10.0} ns/group");
    }

    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
