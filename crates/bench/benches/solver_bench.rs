//! Solver micro-benchmarks: the paper's `O(|A| log |A|)` BiGreedy
//! algorithm against the general simplex, across group counts.
//!
//! Expected shape: BiGreedy stays microseconds out to thousands of groups
//! while the dense simplex grows superlinearly — the reason Theorem 3.8
//! matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expred_solver::bigreedy::GreedyProblem;
use expred_stats::rng::Prng;
use std::hint::black_box;

/// A reproducible structured instance with `k` groups.
fn instance(k: usize, seed: u64) -> GreedyProblem {
    let mut rng = Prng::seeded(seed);
    let sizes: Vec<f64> = (0..k).map(|_| 50.0 + rng.f64() * 2000.0).collect();
    let sels: Vec<f64> = (0..k).map(|_| 0.05 + 0.9 * rng.f64()).collect();
    let alpha = 0.8;
    let recall_mass: f64 = sizes.iter().zip(&sels).map(|(t, s)| t * s).sum();
    let prec_cap: f64 = sizes
        .iter()
        .zip(&sels)
        .map(|(t, s)| (t * (s - alpha)).max(0.0))
        .sum();
    GreedyProblem::from_group_stats(
        &sizes,
        &sels,
        alpha,
        1.0,
        3.0,
        0.8 * recall_mass,
        0.5 * prec_cap,
    )
}

fn bench_bigreedy_vs_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("structured_lp");
    group.sample_size(20);
    for &k in &[16usize, 64, 256, 1024] {
        let problem = instance(k, 42);
        group.bench_with_input(BenchmarkId::new("bigreedy", k), &problem, |b, p| {
            b.iter(|| black_box(p.solve()))
        });
        // The simplex path is only affordable at smaller sizes.
        if k <= 256 {
            let lp = problem.to_linear_program();
            group.bench_with_input(BenchmarkId::new("simplex", k), &lp, |b, p| {
                b.iter(|| black_box(p.solve()))
            });
        }
    }
    group.finish();
}

fn bench_bigreedy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bigreedy_scaling");
    group.sample_size(20);
    for &k in &[4096usize, 16384] {
        let problem = instance(k, 7);
        group.bench_with_input(BenchmarkId::from_parameter(k), &problem, |b, p| {
            b.iter(|| black_box(p.solve()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bigreedy_vs_simplex, bench_bigreedy_scaling);
criterion_main!(benches);
