//! Persistence-tier benchmarks: the cost of durability and the payoff
//! of a warm restart.
//!
//! ```text
//! cargo bench --bench persist_bench            # full run
//! cargo bench --bench persist_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! Scenarios (→ `BENCH_persist.json`):
//!
//! * `warm_restart_naive_beta1` — a β = 1.0 naive query over a slow UDF,
//!   timed in the process that pays for every row vs a fresh process
//!   rehydrating the same directory. The restarted run must charge
//!   **zero** fresh `o_e` (asserted, and exported as the
//!   `warm_restart_bill` row, which must stay 0).
//! * `wal_append` — raw [`PersistStore::append_row`] throughput through
//!   the bounded queue and batched-fsync flusher, ns/record.
//! * `recovery` — reopening the store over that WAL: CRC-checked replay
//!   cost per recovered record.

use expred_bench::BenchReport;
use expred_core::{PersistConfig, QueryEngine, QueryRequest, QuerySpec};
use expred_persist::{PersistKey, PersistStore};
use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
use expred_udf::CostModel;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("expred-persist-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("persist");
    println!(
        "persist_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    // ---- Warm restart: pay once, reboot, answer for free. ----
    let rows = if smoke { 400 } else { 2_000 };
    let latency = Duration::from_micros(if smoke { 50 } else { 100 });
    let ds = Dataset::generate(DatasetSpec { rows, ..PROSPER }, 7);
    // β = 1.0: the naive pipeline evaluates every row, so the cold run
    // is `rows` slow UDF calls and the restart covers the whole table.
    let spec = QuerySpec::try_new(0.8, 1.0, 0.8, CostModel::PAPER_DEFAULT).expect("valid spec");
    let request = QueryRequest::naive(spec).with_seed(7);
    let dir = scratch("engine");

    let engine = |dir: &PathBuf| {
        QueryEngine::new()
            .with_result_capacity(0)
            .with_udf_latency(latency)
            .with_persistence(PersistConfig::new(dir))
            .expect("open persistence")
    };
    let first = engine(&dir);
    let start = Instant::now();
    let cold = first.submit(&ds, &request).expect("cold submit");
    let cold_secs = start.elapsed().as_secs_f64();
    assert_eq!(cold.counts.evaluated as usize, rows, "β = 1.0 pays for all");
    first.flush_persistence().expect("flush before the restart");
    drop(first);

    let second = engine(&dir);
    let start = Instant::now();
    let warm = second.submit(&ds, &request).expect("rehydrated submit");
    let warm_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        warm.counts.evaluated, 0,
        "a warm restart must charge zero fresh o_e"
    );
    assert_eq!(warm.counts.reuse_hits as usize, rows);
    assert_eq!(warm.returned, cold.returned, "restart changed answers");
    let rehydrated = second
        .persist_stats()
        .expect("persistent engine exports stats")
        .rehydrated_rows;
    assert_eq!(rehydrated as usize, rows, "every row came back from disk");
    drop(second);

    let per_row = |secs: f64| secs * 1e9 / rows as f64;
    let ratio = cold_secs / warm_secs;
    report.record(
        "warm_restart_naive_beta1",
        "cold_process",
        per_row(cold_secs),
        1.0,
    );
    report.record(
        "warm_restart_naive_beta1",
        "rehydrated_process",
        per_row(warm_secs),
        ratio,
    );
    // The acceptance row: fresh evaluations after the restart. Must stay
    // 0 forever; bench-diff treats a 0 baseline as unmeasured, so this
    // documents the bill without ever tripping the perf gate.
    report.record(
        "warm_restart_bill",
        "fresh_evaluations_after_restart",
        warm.counts.evaluated as f64,
        1.0,
    );
    println!(
        "warm_restart_naive_beta1    cold {cold_secs:.3}s, rehydrated {warm_secs:.3}s \
         ({rows} rows, 0 fresh o_e) -> {ratio:.0}x"
    );

    // ---- Raw WAL append throughput. ----
    let wal_dir = scratch("wal");
    let records = if smoke { 20_000u32 } else { 200_000 };
    let store = PersistStore::open(
        PersistConfig::new(&wal_dir)
            .with_queue_capacity(records as usize)
            .with_compact_after(0),
    )
    .expect("open WAL store");
    let key = PersistKey {
        udf: 1,
        table: 2,
        version: 3,
    };
    let start = Instant::now();
    for i in 0..records {
        store.append_row(key, i, i % 2 == 0, 1_000 + i as u64);
    }
    store.sync().expect("drain and fsync the WAL");
    let append_secs = start.elapsed().as_secs_f64();
    drop(store);
    let append_ns = append_secs * 1e9 / records as f64;
    report.record("wal_append", "append_plus_batched_fsync", append_ns, 1.0);
    println!("wal_append                  {append_ns:>8.1} ns/record ({records} records)");

    // ---- Recovery replay over that WAL. ----
    let start = Instant::now();
    let recovered = PersistStore::open(PersistConfig::new(&wal_dir)).expect("recover WAL");
    let recovery_secs = start.elapsed().as_secs_f64();
    assert_eq!(
        recovered.stats().recovered_rows,
        records as u64,
        "recovery must replay every record"
    );
    drop(recovered);
    let recovery_ns = recovery_secs * 1e9 / records as f64;
    report.record("recovery", "open_wal", recovery_ns, append_ns / recovery_ns);
    println!("recovery                    {recovery_ns:>8.1} ns/record");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&wal_dir);
    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
