//! Probabilistic-executor throughput: tuples processed per second for
//! deterministic and fractional plans, with and without memoized samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use expred_core::execute::execute_plan;
use expred_core::plan::Plan;
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, DatasetSpec, LENDING_CLUB};
use expred_udf::{OracleUdf, UdfInvoker};
use std::hint::black_box;

fn bench_executor(c: &mut Criterion) {
    let rows = 50_000usize;
    let ds = Dataset::generate(
        DatasetSpec {
            rows,
            ..LENDING_CLUB
        },
        3,
    );
    let groups = ds.table.group_by("grade").unwrap();
    let k = groups.num_groups();
    let udf = OracleUdf::new(expred_table::datasets::LABEL_COLUMN);

    let mut group = c.benchmark_group("executor");
    group.throughput(Throughput::Elements(rows as u64));
    group.sample_size(20);

    let plans = [
        ("evaluate_all", Plan::evaluate_all(k)),
        ("discard_all", Plan::discard_all(k)),
        ("fractional", Plan::new(vec![0.7; k], vec![0.35; k])),
    ];
    for (name, plan) in &plans {
        group.bench_with_input(BenchmarkId::from_parameter(name), plan, |b, plan| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                // Fresh invoker per iteration so memoization does not warp
                // the measurement.
                let invoker = UdfInvoker::new(&udf, &ds.table);
                let mut rng = Prng::seeded(seed);
                black_box(execute_plan(plan, &groups, &invoker, &mut rng))
            })
        });
    }

    // With a warm memo covering 10% of rows (the sampling-reuse path).
    group.bench_function("fractional_with_memo", |b| {
        let plan = Plan::new(vec![0.7; k], vec![0.35; k]);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let invoker = UdfInvoker::new(&udf, &ds.table);
            let mut rng = Prng::seeded(seed);
            for r in 0..rows / 10 {
                invoker.retrieve_and_evaluate(r * 10);
            }
            black_box(execute_plan(&plan, &groups, &invoker, &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
