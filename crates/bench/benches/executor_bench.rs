//! Probabilistic-executor throughput: tuples processed per second for
//! deterministic and fractional plans, with and without memoized samples.
//!
//! ```text
//! cargo bench --bench executor_bench            # full run
//! cargo bench --bench executor_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! Results land in `BENCH_executor.json`: one `execute_plan_<plan>` row
//! per plan shape (ns per table row, sequential backend, free oracle
//! probes — this measures the executor's own bookkeeping, not UDF cost).

use expred_bench::{report::measure_ns_per_unit, BenchReport};
use expred_core::execute::execute_plan;
use expred_core::plan::Plan;
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, DatasetSpec, LENDING_CLUB};
use expred_udf::{OracleUdf, UdfInvoker};
use std::hint::black_box;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("executor");
    println!(
        "executor_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    let rows = if smoke { 10_000 } else { 50_000 };
    let ds = Dataset::generate(
        DatasetSpec {
            rows,
            ..LENDING_CLUB
        },
        3,
    );
    let groups = ds.table.group_by("grade").unwrap();
    let k = groups.num_groups();
    let udf = OracleUdf::new(expred_table::datasets::LABEL_COLUMN);
    let reps = if smoke { 3 } else { 20 };

    let plans = [
        ("evaluate_all", Plan::evaluate_all(k)),
        ("discard_all", Plan::discard_all(k)),
        ("fractional", Plan::new(vec![0.7; k], vec![0.35; k])),
    ];
    for (name, plan) in &plans {
        let mut seed = 0u64;
        let ns = measure_ns_per_unit(rows as u64, reps, || {
            seed += 1;
            // Fresh invoker per iteration so memoization does not warp
            // the measurement.
            let invoker = UdfInvoker::new(&udf, &ds.table);
            let mut rng = Prng::seeded(seed);
            black_box(execute_plan(plan, &groups, &invoker, &mut rng));
        });
        let scenario = format!("execute_plan_{name}");
        report.record(&scenario, "sequential", ns, 1.0);
        println!("{scenario:<30} {ns:>8.1} ns/row");
    }

    // With a warm memo covering 10% of rows (the sampling-reuse path).
    let plan = Plan::new(vec![0.7; k], vec![0.35; k]);
    let mut seed = 0u64;
    let ns = measure_ns_per_unit(rows as u64, reps, || {
        seed += 1;
        let invoker = UdfInvoker::new(&udf, &ds.table);
        let mut rng = Prng::seeded(seed);
        for r in 0..rows / 10 {
            invoker.retrieve_and_evaluate(r * 10);
        }
        black_box(execute_plan(&plan, &groups, &invoker, &mut rng));
    });
    let scenario = "execute_plan_fractional_with_memo";
    report.record(scenario, "sequential", ns, 1.0);
    println!("{scenario:<30} {ns:>8.1} ns/row");

    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
