//! End-to-end pipeline benchmarks: the paper's claim that the optimizer's
//! compute time (column selection + sampling + convex optimization) is a
//! negligible fraction of the UDF savings ("less than a second on each of
//! the datasets", §6.2).
//!
//! ```text
//! cargo bench --bench pipeline_bench            # full run
//! cargo bench --bench pipeline_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! Scenarios (results land in `BENCH_pipeline.json`; `ns_per_probe` is
//! ns per correlation *group* for the optimizer rows and ns per *row*
//! for the full-pipeline row):
//!
//! * `convex_optimizer_<dataset>` — the estimated-selectivity convex
//!   program alone, on group statistics shaped like each paper dataset.
//! * `intel_sample_prosper_10k` — the full Intel-Sample pipeline
//!   (grouping, sampling, optimizing, executing), fresh seed per rep.

use expred_bench::{report::measure_ns_per_unit, BenchReport};
use expred_core::optimize::{solve_estimated, CorrelationModel, EstimatedGroup};
use expred_core::pipeline::{run_intel_sample, IntelSampleConfig, PredictorChoice};
use expred_core::query::QuerySpec;
use expred_table::datasets::{all_specs, Dataset, DatasetSpec, PROSPER};
use std::hint::black_box;

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("pipeline");
    println!(
        "pipeline_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    // The convex optimizer alone, on group statistics shaped like each
    // paper dataset (7–10 groups, 30k–53k tuples).
    let spec = QuerySpec::paper_default();
    let reps = if smoke { 5 } else { 50 };
    for ds_spec in all_specs() {
        let ds = Dataset::generate(ds_spec, 1);
        let stats = ds.group_stats(ds.predictor());
        let groups: Vec<EstimatedGroup> = stats
            .per_group
            .iter()
            .map(|&(t, s)| {
                let f = (t as f64 * 0.05).round();
                EstimatedGroup {
                    size: t as f64,
                    sampled: f,
                    sampled_positive: (f * s).round(),
                    sel: s,
                    var: s * (1.0 - s) / (f + 3.0),
                }
            })
            .collect();
        let scenario = format!("convex_optimizer_{}", ds_spec.name);
        let ns = measure_ns_per_unit(groups.len() as u64, reps, || {
            black_box(solve_estimated(&groups, &spec, CorrelationModel::Independent).unwrap());
        });
        report.record(&scenario, "solver", ns, 1.0);
        println!(
            "{scenario:<34} {ns:>12.0} ns/group ({} groups)",
            groups.len()
        );
    }

    // The full Intel-Sample pipeline on a mid-sized dataset.
    let rows = if smoke { 3_000 } else { 10_000 };
    let ds = Dataset::generate(DatasetSpec { rows, ..PROSPER }, 2);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    let mut seed = 0u64;
    let reps = if smoke { 1 } else { 5 };
    let ns = measure_ns_per_unit(rows as u64, reps, || {
        seed += 1;
        black_box(run_intel_sample(&ds, &cfg, seed));
    });
    let scenario = "intel_sample_prosper_10k";
    report.record(scenario, "sequential", ns, 1.0);
    println!("{scenario:<34} {ns:>12.0} ns/row  ({rows} rows)");

    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
