//! End-to-end pipeline benchmarks: the paper's claim that the optimizer's
//! compute time (column selection + sampling + convex optimization) is a
//! negligible fraction of the UDF savings ("less than a second on each of
//! the datasets", §6.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expred_core::optimize::{solve_estimated, CorrelationModel, EstimatedGroup};
use expred_core::pipeline::{run_intel_sample, IntelSampleConfig, PredictorChoice};
use expred_core::query::QuerySpec;
use expred_table::datasets::{all_specs, Dataset, DatasetSpec, PROSPER};
use std::hint::black_box;

/// The convex optimizer alone, on group statistics shaped like each paper
/// dataset (7–10 groups, 30k–53k tuples).
fn bench_convex_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("convex_optimizer");
    group.sample_size(30);
    let spec = QuerySpec::paper_default();
    for ds_spec in all_specs() {
        let ds = Dataset::generate(ds_spec, 1);
        let stats = ds.group_stats(ds.predictor());
        let groups: Vec<EstimatedGroup> = stats
            .per_group
            .iter()
            .map(|&(t, s)| {
                let f = (t as f64 * 0.05).round();
                EstimatedGroup {
                    size: t as f64,
                    sampled: f,
                    sampled_positive: (f * s).round(),
                    sel: s,
                    var: s * (1.0 - s) / (f + 3.0),
                }
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(ds_spec.name),
            &groups,
            |b, gs| {
                b.iter(|| {
                    black_box(solve_estimated(gs, &spec, CorrelationModel::Independent).unwrap())
                })
            },
        );
    }
    group.finish();
}

/// The full Intel-Sample pipeline (grouping, sampling, optimizing,
/// executing) on a mid-sized dataset.
fn bench_full_pipeline(c: &mut Criterion) {
    let ds = Dataset::generate(
        DatasetSpec {
            rows: 10_000,
            ..PROSPER
        },
        2,
    );
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    let mut group = c.benchmark_group("intel_sample_pipeline");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench_function("prosper_10k", |b| {
        b.iter(|| {
            seed += 1;
            black_box(run_intel_sample(&ds, &cfg, seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_convex_optimizer, bench_full_pipeline);
criterion_main!(benches);
