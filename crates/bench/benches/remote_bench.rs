//! Remote-UDF backend benchmark: wire tax, hedged tail-cutting, and
//! retry goodput under injected faults, against the bundled UDF server.
//!
//! ```text
//! cargo bench --bench remote_bench            # full run
//! cargo bench --bench remote_bench -- --smoke # CI proof (same
//!                                             # scenarios, smaller and
//!                                             # with perf assertions
//!                                             # relaxed)
//! ```
//!
//! Three scenarios (→ `BENCH_remote.json`):
//!
//! * `healthy_wire` — sequential probes against a fault-free in-process
//!   [`UdfServer`] vs the same oracle read out of local memory. The
//!   `remote` row's `speedup_vs_baseline` is the full
//!   connect+frame+syscall tax (far below 1.0 by design — this row
//!   prices the wire, it does not race it).
//! * `tail_stalls` — 2% of responses stall for the configured tail
//!   delay. An unhedged client eats every stall in its p99; a hedged
//!   client fires a speculative duplicate after a short fixed delay and
//!   takes whichever answer lands first. The headline is
//!   `unhedged_p99 / hedged_p99`.
//! * `drop_storm` — 20% of responses are silently dropped, so the
//!   client's deadline+retry loop carries the workload. The artifact
//!   rows are goodput and the retries-per-request ratio; correctness
//!   (every answer equals the oracle) is asserted, not measured.
//!
//! Value semantics per row: `ns_per_probe` holds per-probe nanoseconds
//! for latency rows, probes/sec for `probes_per_sec`, and a plain ratio
//! for `retries_per_request`.

use expred_bench::BenchReport;
use expred_remote::{ClientConfig, FaultPlan, HedgeConfig, RemoteClient, UdfServer};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// SplitMix64 — the same generator the server binary uses for labels.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn make_oracle(rows: usize, seed: u64, selectivity: f64) -> Arc<Vec<bool>> {
    let mut state = seed;
    let threshold = (selectivity * u64::MAX as f64) as u64;
    Arc::new(
        (0..rows)
            .map(|_| splitmix64(&mut state) <= threshold)
            .collect(),
    )
}

fn serve_oracle(labels: &Arc<Vec<bool>>, plan: FaultPlan) -> UdfServer {
    let mut oracles = HashMap::new();
    oracles.insert("default".to_owned(), Arc::clone(labels));
    UdfServer::bind("127.0.0.1:0", oracles, plan).expect("bind udf server")
}

/// Probes `rows` sequentially, asserts every answer against the oracle,
/// and returns per-probe latencies.
fn probe_all(client: &RemoteClient, labels: &[bool], rows: usize) -> Vec<Duration> {
    let mut latencies = Vec::with_capacity(rows);
    for (row, &expected) in labels.iter().enumerate().take(rows) {
        let sent = Instant::now();
        let answer = client.probe("default", row as u64).expect("probe");
        latencies.push(sent.elapsed());
        assert_eq!(answer, expected, "row {row} diverged from the oracle");
    }
    latencies
}

fn quantile_ns(latencies: &mut [Duration], q: f64) -> f64 {
    latencies.sort_unstable();
    let idx = ((latencies.len() as f64 * q).ceil() as usize).clamp(1, latencies.len()) - 1;
    latencies[idx].as_nanos() as f64
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("remote");
    println!(
        "remote_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    let rows = if smoke { 400 } else { 2_000 };
    let labels = make_oracle(rows, 42, 0.4);

    // -- healthy_wire ----------------------------------------------------
    let server = serve_oracle(&labels, FaultPlan::healthy());
    let client = RemoteClient::new(ClientConfig::new(server.addr().to_string()));
    let mut wire = probe_all(&client, &labels, rows);
    let remote_ns = wire.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / rows as f64;
    let start = Instant::now();
    let mut local_hits = 0usize;
    for row in 0..rows {
        local_hits += usize::from(labels[row]);
    }
    let local_ns = (start.elapsed().as_nanos() as f64 / rows as f64).max(1.0);
    assert!(
        local_hits > 0 && local_hits < rows,
        "oracle is non-degenerate"
    );
    let wire_p99 = quantile_ns(&mut wire, 0.99);
    report.record("healthy_wire", "local_memory", local_ns, 1.0);
    report.record("healthy_wire", "remote", remote_ns, local_ns / remote_ns);
    report.record("healthy_wire", "remote_p99_ns", wire_p99, 1.0);
    println!(
        "healthy_wire: {rows} probes | local {local_ns:>8.1} ns | remote {remote_ns:>9.0} ns | \
         p99 {:.1}us",
        wire_p99 / 1e3
    );
    drop(server);

    // -- tail_stalls -----------------------------------------------------
    // 2% of responses stall (1% would leave the stall mass entirely
    // above the p99 rank). The hedged client uses a fixed hedge delay
    // (min_samples = MAX pins it to initial_delay) well under the stall,
    // so a stalled primary is overtaken by its healthy duplicate.
    let tail_delay = Duration::from_millis(if smoke { 40 } else { 100 });
    let hedge_delay = Duration::from_millis(5);
    let stall_plan = FaultPlan {
        seed: 7,
        tail_probability: 0.02,
        tail_delay,
        ..FaultPlan::healthy()
    };
    let server = serve_oracle(&labels, stall_plan);
    let endpoint = server.addr().to_string();

    let unhedged = RemoteClient::new(ClientConfig {
        hedge: None,
        attempt_timeout: tail_delay * 4,
        ..ClientConfig::new(endpoint.clone())
    });
    let mut unhedged_lat = probe_all(&unhedged, &labels, rows);

    let hedged = RemoteClient::new(ClientConfig {
        hedge: Some(HedgeConfig {
            initial_delay: hedge_delay,
            min_samples: usize::MAX,
        }),
        attempt_timeout: tail_delay * 4,
        ..ClientConfig::new(endpoint)
    });
    let mut hedged_lat = probe_all(&hedged, &labels, rows);
    let hedged_stats = hedged.stats();

    let unhedged_p99 = quantile_ns(&mut unhedged_lat, 0.99);
    let hedged_p99 = quantile_ns(&mut hedged_lat, 0.99);
    report.record("tail_stalls", "unhedged_p99_ns", unhedged_p99, 1.0);
    report.record(
        "tail_stalls",
        "hedged_p99_ns",
        hedged_p99,
        unhedged_p99 / hedged_p99,
    );
    report.record(
        "tail_stalls",
        "hedge_wins",
        hedged_stats.hedge_wins as f64,
        1.0,
    );
    println!(
        "tail_stalls: {rows} probes, 2% x {tail_delay:?} | unhedged p99 {:.2}ms | \
         hedged p99 {:.2}ms ({:.1}x) | {} hedges, {} wins",
        unhedged_p99 / 1e6,
        hedged_p99 / 1e6,
        unhedged_p99 / hedged_p99,
        hedged_stats.hedges,
        hedged_stats.hedge_wins,
    );
    assert!(
        hedged_stats.hedge_wins > 0,
        "some stalled primaries must lose to their hedge"
    );
    assert!(
        smoke || hedged_p99 < unhedged_p99,
        "hedging must cut the stall-dominated p99: {hedged_p99:.0} vs {unhedged_p99:.0} ns"
    );
    drop(server);

    // -- drop_storm ------------------------------------------------------
    // 20% of responses vanish; every probe still answers correctly via
    // deadline + retry, and the extra attempts are ledgered, not billed.
    let storm_rows = rows / 4;
    let storm_plan = FaultPlan {
        seed: 11,
        drop_probability: 0.20,
        ..FaultPlan::healthy()
    };
    let server = serve_oracle(&labels, storm_plan);
    let storm = RemoteClient::new(ClientConfig {
        attempt_timeout: Duration::from_millis(60),
        max_retries: 12,
        hedge: None,
        ..ClientConfig::new(server.addr().to_string())
    });
    let start = Instant::now();
    probe_all(&storm, &labels, storm_rows);
    let storm_wall = start.elapsed();
    let storm_stats = storm.stats();
    let goodput = storm_rows as f64 / storm_wall.as_secs_f64();
    let retry_ratio = storm_stats.retries as f64 / storm_stats.requests as f64;
    report.record("drop_storm", "probes_per_sec", goodput, 1.0);
    report.record("drop_storm", "retries_per_request", retry_ratio, 1.0);
    println!(
        "drop_storm: {storm_rows} probes, 20% drops | {goodput:.0} probes/s | \
         {:.2} retries/request",
        retry_ratio
    );
    assert!(
        storm_stats.retries > 0,
        "a 20% drop rate must force at least one retry"
    );

    let path = report.write().expect("write artifact");
    println!("wrote {}", path.display());
}
