//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * greedy fast path vs always-exact LP inside `solve_robust`;
//! * independence vs worst-case correlation model in the convex program;
//! * the three sampling rules at equal total budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expred_core::optimize::{solve_estimated, CorrelationModel, EstimatedGroup};
use expred_core::pipeline::{run_intel_sample, IntelSampleConfig, PredictorChoice};
use expred_core::query::QuerySpec;
use expred_core::sampling::SampleSizeRule;
use expred_solver::bigreedy::GreedyProblem;
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, DatasetSpec, LENDING_CLUB};
use std::hint::black_box;

fn greedy_instance(k: usize) -> GreedyProblem {
    let mut rng = Prng::seeded(11);
    let sizes: Vec<f64> = (0..k).map(|_| 100.0 + rng.f64() * 1000.0).collect();
    let sels: Vec<f64> = (0..k).map(|_| 0.05 + 0.9 * rng.f64()).collect();
    let recall_mass: f64 = sizes.iter().zip(&sels).map(|(t, s)| t * s).sum();
    GreedyProblem::from_group_stats(&sizes, &sels, 0.8, 1.0, 3.0, 0.8 * recall_mass, 10.0)
}

fn bench_fast_path_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_robust");
    group.sample_size(20);
    for &k in &[8usize, 64, 256] {
        let p = greedy_instance(k);
        group.bench_with_input(BenchmarkId::new("greedy_first", k), &p, |b, p| {
            b.iter(|| black_box(p.solve_robust(false)))
        });
        group.bench_with_input(BenchmarkId::new("always_exact", k), &p, |b, p| {
            b.iter(|| black_box(p.solve_robust(true)))
        });
    }
    group.finish();
}

fn bench_correlation_models(c: &mut Criterion) {
    let groups: Vec<EstimatedGroup> = (0..10)
        .map(|i| {
            let s = 0.1 + 0.08 * i as f64;
            EstimatedGroup {
                size: 5_000.0,
                sampled: 250.0,
                sampled_positive: (250.0 * s).round(),
                sel: s,
                var: s * (1.0 - s) / 253.0,
            }
        })
        .collect();
    let spec = QuerySpec::paper_default();
    let mut group = c.benchmark_group("correlation_model");
    group.sample_size(30);
    for (name, corr) in [
        ("independent", CorrelationModel::Independent),
        ("unknown", CorrelationModel::Unknown),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &corr, |b, &corr| {
            b.iter(|| black_box(solve_estimated(&groups, &spec, corr).unwrap()))
        });
    }
    group.finish();
}

fn bench_sampling_rules(c: &mut Criterion) {
    let ds = Dataset::generate(
        DatasetSpec {
            rows: 10_000,
            ..LENDING_CLUB
        },
        4,
    );
    let mut group = c.benchmark_group("sampling_rule_pipeline");
    group.sample_size(10);
    // Equal-ish total budgets: 5% of 10k = 500 tuples.
    let rules = [
        ("fraction_5pct", SampleSizeRule::Fraction(0.05)),
        ("constant_71", SampleSizeRule::Constant(71)),
        ("two_third_power", SampleSizeRule::TwoThirdPower(1.08)),
    ];
    for (name, rule) in rules {
        let cfg = IntelSampleConfig {
            spec: QuerySpec::paper_default(),
            rule,
            corr: CorrelationModel::Independent,
            predictor: PredictorChoice::Fixed("grade".into()),
        };
        let mut seed = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                seed += 1;
                black_box(run_intel_sample(&ds, cfg, seed))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fast_path_vs_exact,
    bench_correlation_models,
    bench_sampling_rules
);
criterion_main!(benches);
