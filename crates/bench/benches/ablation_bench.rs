//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * greedy fast path vs always-exact LP inside `solve_robust`;
//! * independence vs worst-case correlation model in the convex program;
//! * the three sampling rules at equal total budget.
//!
//! ```text
//! cargo bench --bench ablation_bench            # full run
//! cargo bench --bench ablation_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! Results land in `BENCH_ablation.json`; each scenario's first listed
//! variant is the baseline the others' `speedup_vs_baseline` refers to.

use expred_bench::{report::measure_ns_per_unit, BenchReport};
use expred_core::optimize::{solve_estimated, CorrelationModel, EstimatedGroup};
use expred_core::pipeline::{run_intel_sample, IntelSampleConfig, PredictorChoice};
use expred_core::query::QuerySpec;
use expred_core::sampling::SampleSizeRule;
use expred_solver::bigreedy::GreedyProblem;
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, DatasetSpec, LENDING_CLUB};
use std::hint::black_box;

fn greedy_instance(k: usize) -> GreedyProblem {
    let mut rng = Prng::seeded(11);
    let sizes: Vec<f64> = (0..k).map(|_| 100.0 + rng.f64() * 1000.0).collect();
    let sels: Vec<f64> = (0..k).map(|_| 0.05 + 0.9 * rng.f64()).collect();
    let recall_mass: f64 = sizes.iter().zip(&sels).map(|(t, s)| t * s).sum();
    GreedyProblem::from_group_stats(&sizes, &sels, 0.8, 1.0, 3.0, 0.8 * recall_mass, 10.0)
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut report = BenchReport::new("ablation");
    println!(
        "ablation_bench ({} mode)",
        if smoke { "smoke" } else { "full" }
    );

    // Greedy fast path vs always-exact LP.
    let sizes: &[usize] = if smoke { &[8, 64] } else { &[8, 64, 256] };
    let reps = if smoke { 5 } else { 20 };
    for &k in sizes {
        let p = greedy_instance(k);
        let scenario = format!("solve_robust_{k}");
        let greedy_ns = measure_ns_per_unit(k as u64, reps, || {
            let _ = black_box(p.solve_robust(false));
        });
        let exact_ns = measure_ns_per_unit(k as u64, reps, || {
            let _ = black_box(p.solve_robust(true));
        });
        report.record(&scenario, "greedy_first", greedy_ns, 1.0);
        report.record(&scenario, "always_exact", exact_ns, greedy_ns / exact_ns);
        println!(
            "{scenario:<26} greedy_first {greedy_ns:>10.0} ns/group | always_exact \
             {exact_ns:>10.0} ns/group"
        );
    }

    // Correlation model cost inside the convex program.
    let groups: Vec<EstimatedGroup> = (0..10)
        .map(|i| {
            let s = 0.1 + 0.08 * i as f64;
            EstimatedGroup {
                size: 5_000.0,
                sampled: 250.0,
                sampled_positive: (250.0 * s).round(),
                sel: s,
                var: s * (1.0 - s) / 253.0,
            }
        })
        .collect();
    let spec = QuerySpec::paper_default();
    let model_reps = if smoke { 10 } else { 30 };
    let mut baseline_ns = 0.0;
    for (name, corr) in [
        ("independent", CorrelationModel::Independent),
        ("unknown", CorrelationModel::Unknown),
    ] {
        let ns = measure_ns_per_unit(groups.len() as u64, model_reps, || {
            black_box(solve_estimated(&groups, &spec, corr).unwrap());
        });
        if name == "independent" {
            baseline_ns = ns;
            report.record("correlation_model", name, ns, 1.0);
        } else {
            report.record("correlation_model", name, ns, baseline_ns / ns);
        }
        println!("correlation_model/{name:<12} {ns:>10.0} ns/group");
    }

    // Sampling rules at equal-ish total budget (5% of the table).
    let rows = if smoke { 3_000 } else { 10_000 };
    let ds = Dataset::generate(
        DatasetSpec {
            rows,
            ..LENDING_CLUB
        },
        4,
    );
    let rules = [
        ("fraction_5pct", SampleSizeRule::Fraction(0.05)),
        ("constant_71", SampleSizeRule::Constant(71)),
        ("two_third_power", SampleSizeRule::TwoThirdPower(1.08)),
    ];
    let rule_reps = if smoke { 1 } else { 5 };
    let mut baseline_ns = 0.0;
    for (i, (name, rule)) in rules.into_iter().enumerate() {
        let cfg = IntelSampleConfig {
            spec: QuerySpec::paper_default(),
            rule,
            corr: CorrelationModel::Independent,
            predictor: PredictorChoice::Fixed("grade".into()),
        };
        let mut seed = 0u64;
        let ns = measure_ns_per_unit(rows as u64, rule_reps, || {
            seed += 1;
            black_box(run_intel_sample(&ds, &cfg, seed));
        });
        if i == 0 {
            baseline_ns = ns;
            report.record("sampling_rule_pipeline", name, ns, 1.0);
        } else {
            report.record("sampling_rule_pipeline", name, ns, baseline_ns / ns);
        }
        println!("sampling_rule_pipeline/{name:<16} {ns:>8.1} ns/row");
    }

    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
