//! `scan_bench` — the columnar kernel layer vs the legacy per-cell
//! paths, in ns/row.
//!
//! ```text
//! cargo bench --bench scan_bench            # full grid
//! cargo bench --bench scan_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! Scenarios (each at table sizes ≥4096 rows):
//!
//! * `group_by_<rows>` — `Table::group_by` (the `Column::group_codes`
//!   kernel) vs `group_by_reference` (the legacy `HashMap<ValueKey>`
//!   per-cell path) on the PROSPER `grade` column. Both produce the same
//!   `GroupBy` byte for byte; the kernel skips the per-cell `Value`
//!   materialization.
//! * `one_hot_<rows>` — `extract_features` (dictionary-coded one-hot)
//!   vs `extract_features_reference` (per-cell `to_string` keys) over
//!   the full PROSPER candidate set.
//! * `zone_scan_<rows>` — `Table::scan` with a selective `IntRange` on
//!   value-clustered data (zone maps skip non-matching 1024-row chunks)
//!   vs the naive full-column filter the scan replaces.
//! * `derived_group_by_<rows>` — re-deriving the `grade` partition per
//!   query vs serving it from a warmed session [`DerivedCache`].
//!
//! Results land in `BENCH_scan.json` (schema: `expred_bench::report`);
//! the legacy path is the per-scenario speedup baseline. Full mode
//! prints a WARNING (it does not panic) if a kernel fails to beat its
//! baseline — CI smoke runs make no timing claims.

use expred_bench::report::measure_ns_per_unit;
use expred_bench::BenchReport;
use expred_ml::features::{extract_features, extract_features_reference, FeatureSpec};
use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
use expred_table::{DerivedCache, ScanPredicate, Table, Value};
use std::hint::black_box;

/// A one-column Int table whose values are clustered (non-decreasing),
/// so a selective range predicate can prune whole zones.
fn clustered_int_table(rows: usize) -> Table {
    use expred_table::{DataType, Field, Schema};
    let schema = Schema::new(vec![Field::new("reading", DataType::Int)]);
    let cells: Vec<Vec<Value>> = (0..rows)
        .map(|r| vec![Value::Int((r / 64) as i64)])
        .collect();
    Table::from_rows(schema, cells).expect("schema matches rows")
}

/// The naive filter `Table::scan` replaces: materialize every cell,
/// compare, collect.
fn naive_int_range(table: &Table, lo: i64, hi: i64) -> Vec<u32> {
    let n = table.num_rows();
    let mut hits = Vec::new();
    for r in 0..n {
        if let Some(Value::Int(v)) = table.value(r, "reading") {
            if v >= lo && v <= hi {
                hits.push(r as u32);
            }
        }
    }
    hits
}

fn main() {
    // `cargo test` probes bench binaries with --test; do nothing.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");

    let sizes: &[usize] = if smoke { &[4_096] } else { &[4_096, 30_000] };
    let reps: usize = if smoke { 2 } else { 30 };

    let mut report = BenchReport::new("scan");
    println!(
        "scan_bench ({} mode): columnar kernels vs legacy per-cell paths",
        if smoke { "smoke" } else { "full" }
    );
    let mut warnings = 0usize;
    let mut check = |scenario: &str, legacy: f64, kernel: f64| {
        if !smoke && kernel >= legacy {
            println!("WARNING: {scenario}: kernel ({kernel:.0} ns/row) not faster than legacy ({legacy:.0} ns/row)");
            warnings += 1;
        }
    };

    for &rows in sizes {
        let ds = Dataset::generate(DatasetSpec { rows, ..PROSPER }, 7);
        let units = rows as u64;

        // Group-by: legacy HashMap<ValueKey> vs the group_codes kernel.
        let scenario = format!("group_by_{rows}");
        let legacy = measure_ns_per_unit(units, reps, || {
            black_box(ds.table.group_by_reference("grade").unwrap());
        });
        let kernel = measure_ns_per_unit(units, reps, || {
            black_box(ds.table.group_by("grade").unwrap());
        });
        report.record(&scenario, "legacy", legacy, 1.0);
        report.record(&scenario, "kernel", kernel, legacy / kernel);
        println!(
            "{scenario:<24} legacy {legacy:>8.1} ns/row | kernel {kernel:>8.1} ({:>5.2}x)",
            legacy / kernel
        );
        check(&scenario, legacy, kernel);

        // One-hot encoding: per-cell to_string keys vs dictionary codes.
        let scenario = format!("one_hot_{rows}");
        let exclude = ["label", "row_id"];
        let legacy = measure_ns_per_unit(units, reps.div_ceil(3), || {
            black_box(extract_features_reference(
                &ds.table,
                &exclude,
                FeatureSpec::default(),
            ));
        });
        let kernel = measure_ns_per_unit(units, reps.div_ceil(3), || {
            black_box(extract_features(
                &ds.table,
                &exclude,
                FeatureSpec::default(),
            ));
        });
        report.record(&scenario, "legacy", legacy, 1.0);
        report.record(&scenario, "kernel", kernel, legacy / kernel);
        println!(
            "{scenario:<24} legacy {legacy:>8.1} ns/row | kernel {kernel:>8.1} ({:>5.2}x)",
            legacy / kernel
        );
        check(&scenario, legacy, kernel);

        // Zone-mapped scan: selective range on clustered data.
        let clustered = clustered_int_table(rows);
        let hi = (rows / 64) as i64;
        let (lo, hi) = (hi - hi / 8, hi); // top ~12.5% of the value range
        let scenario = format!("zone_scan_{rows}");
        let legacy = measure_ns_per_unit(units, reps, || {
            black_box(naive_int_range(&clustered, lo, hi));
        });
        let pred = ScanPredicate::IntRange { lo, hi };
        let kernel = measure_ns_per_unit(units, reps, || {
            black_box(clustered.scan("reading", &pred).unwrap());
        });
        let (_, stats) = clustered.scan("reading", &pred).unwrap();
        report.record(&scenario, "legacy", legacy, 1.0);
        report.record(&scenario, "kernel", kernel, legacy / kernel);
        println!(
            "{scenario:<24} legacy {legacy:>8.1} ns/row | kernel {kernel:>8.1} ({:>5.2}x) \
             [{}/{} zones skipped]",
            legacy / kernel,
            stats.zones_skipped,
            stats.zones_total,
        );
        check(&scenario, legacy, kernel);

        // Derived cache: per-query re-derivation vs a warmed session memo.
        let scenario = format!("derived_group_by_{rows}");
        let legacy = measure_ns_per_unit(units, reps, || {
            black_box(ds.table.group_by("grade").unwrap());
        });
        let cache = DerivedCache::new();
        let kernel = measure_ns_per_unit(units, reps, || {
            black_box(cache.group_by(&ds.table, "grade").unwrap());
        });
        report.record(&scenario, "legacy", legacy, 1.0);
        report.record(&scenario, "cached", kernel, legacy / kernel);
        println!(
            "{scenario:<24} derive {legacy:>8.1} ns/row | cached {kernel:>8.1} ({:>5.2}x)",
            legacy / kernel
        );
        check(&scenario, legacy, kernel);
    }

    if warnings > 0 {
        println!("{warnings} scenario(s) below target — see WARNINGs above");
    }
    match report.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write report: {e}"),
    }
}
