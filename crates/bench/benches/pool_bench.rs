//! `pool_bench` — `Sequential` vs `Parallel` vs `WorkerPool` across the
//! batch-size × UDF-latency grid, plus the many-small-batches drain that
//! motivated the pool.
//!
//! ```text
//! cargo bench --bench pool_bench            # full grid
//! cargo bench --bench pool_bench -- --smoke # CI: compile-and-run proof
//! ```
//!
//! Scenarios:
//!
//! * `batch_<n>_udf_<lat>` — one fresh batch of `n` spin-wait probes of
//!   the given latency, repeated; reports mean ns/probe per backend.
//! * `many_small_batches_udf_100us` — the planner's group-by-group
//!   drain: hundreds of 16-row batches pushed through `evaluate_batch`
//!   one after another. `Parallel` runs these inline (16 < its spawn
//!   floor) or pays per-batch thread spawns; the pool's persistent
//!   workers are the point. The ISSUE target: pool ≥2× over `Parallel`
//!   here, parity elsewhere.
//!
//! Results land in `BENCH_pool.json` (schema: `expred_bench::report`),
//! with `sequential` as the per-scenario speedup baseline.
//!
//! The probe models the paper's UDFs: an *expensive call whose cost is
//! latency, not CPU* (credit checks, crowdsourcing, web services), so
//! ≥50µs probes `thread::sleep` — they overlap across workers the way
//! concurrent service calls do, core count notwithstanding — while
//! µs-probes spin (sleep granularity cannot express them; they model the
//! CPU-bound end, where a 1-core box rightly shows parity). Backends are
//! 8-wide like `exec_bench`'s: in-flight window sizing for latency-bound
//! UDFs is connection-pool math, not core-count math.

use expred_bench::BenchReport;
use expred_exec::{Executor, Parallel, Sequential, WorkerPool};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Worker width for the threaded backends (see module docs).
const WIDTH: usize = 8;

/// Latency at and above which the probe sleeps instead of spinning.
const SLEEP_THRESHOLD: Duration = Duration::from_micros(50);

/// A probe costing roughly `latency` per call: latency-bound (sleeping)
/// for service-call scales, CPU-bound (spinning) for µs scales.
fn expensive_probe(latency: Duration) -> impl Fn(usize) -> bool + Sync {
    move |row: usize| {
        if latency >= SLEEP_THRESHOLD {
            std::thread::sleep(latency);
        } else {
            let begin = Instant::now();
            let mut acc = row as u64;
            while begin.elapsed() < latency {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                black_box(acc);
            }
        }
        row.is_multiple_of(3)
    }
}

/// Wall-clock per probe for `reps` fresh evaluations of one batch.
fn time_batch(executor: &dyn Executor, latency: Duration, rows: &[usize], reps: usize) -> f64 {
    let probe = expensive_probe(latency);
    // Warm up (lets the pool's latency EWMA settle into this scenario).
    black_box(executor.evaluate_batch(&probe, rows));
    let begin = Instant::now();
    for _ in 0..reps {
        black_box(executor.evaluate_batch(&probe, rows));
    }
    begin.elapsed().as_nanos() as f64 / (reps * rows.len()) as f64
}

/// Wall-clock per probe for draining `batches` consecutive small batches.
fn time_many_small(
    executor: &dyn Executor,
    latency: Duration,
    batches: usize,
    batch_rows: usize,
    reps: usize,
) -> f64 {
    let probe = expensive_probe(latency);
    let groups: Vec<Vec<usize>> = (0..batches)
        .map(|g| (g * batch_rows..(g + 1) * batch_rows).collect())
        .collect();
    for group in groups.iter().take(4) {
        black_box(executor.evaluate_batch(&probe, group));
    }
    let begin = Instant::now();
    for _ in 0..reps {
        for group in &groups {
            black_box(executor.evaluate_batch(&probe, group));
        }
    }
    begin.elapsed().as_nanos() as f64 / (reps * batches * batch_rows) as f64
}

fn fmt_latency(latency: Duration) -> String {
    if latency < Duration::from_micros(1000) {
        format!("{}us", latency.as_micros())
    } else {
        format!("{}ms", latency.as_millis())
    }
}

/// Repetitions that keep one (scenario, backend) cell near `budget`,
/// assuming the worst case (sequential) cost.
fn reps_for(rows: usize, latency: Duration, budget: Duration) -> usize {
    let serial = rows as u128 * latency.as_nanos().max(1);
    (budget.as_nanos() / serial.max(1)).clamp(1, 30) as usize
}

fn main() {
    // `cargo test` probes bench binaries with --test; do nothing.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    let smoke = std::env::args().any(|a| a == "--smoke");

    let batch_sizes: &[usize] = if smoke {
        &[8, 512]
    } else {
        &[8, 64, 512, 4096]
    };
    let latencies: &[Duration] = if smoke {
        &[Duration::from_micros(1), Duration::from_micros(100)]
    } else {
        &[
            Duration::from_micros(1),
            Duration::from_micros(100),
            Duration::from_millis(1),
        ]
    };
    let budget = if smoke {
        Duration::from_millis(80)
    } else {
        Duration::from_millis(700)
    };

    let mut report = BenchReport::new("pool");
    println!(
        "pool_bench ({} mode): sequential vs parallel vs worker_pool",
        if smoke { "smoke" } else { "full" }
    );

    for &latency in latencies {
        for &rows_n in batch_sizes {
            // The full 4096×1ms sequential baseline alone would take >4s
            // per rep; the grid caps serial cost per cell instead.
            if rows_n as u128 * latency.as_nanos() > Duration::from_secs(1).as_nanos() {
                continue;
            }
            let scenario = format!("batch_{rows_n}_udf_{}", fmt_latency(latency));
            let rows: Vec<usize> = (0..rows_n).collect();
            let reps = reps_for(rows_n, latency, budget);
            let sequential = time_batch(&Sequential, latency, &rows, reps);
            let parallel = time_batch(&Parallel::with_threads(WIDTH), latency, &rows, reps);
            let pool = WorkerPool::with_threads(WIDTH);
            let pooled = time_batch(&pool, latency, &rows, reps);
            report.record(&scenario, "sequential", sequential, 1.0);
            report.record(&scenario, "parallel", parallel, sequential / parallel);
            report.record(&scenario, "worker_pool", pooled, sequential / pooled);
            println!(
                "{scenario:<28} seq {sequential:>10.0} ns/probe | par {parallel:>10.0} \
                 ({:>5.2}x) | pool {pooled:>10.0} ({:>5.2}x) | pool/par {:>5.2}x",
                sequential / parallel,
                sequential / pooled,
                parallel / pooled,
            );
        }
    }

    // The headline scenario: a pipeline draining many small
    // correlation-group batches of a 100µs UDF.
    let (batches, reps) = if smoke { (32, 1) } else { (256, 3) };
    let latency = Duration::from_micros(100);
    let scenario = "many_small_batches_udf_100us";
    let sequential = time_many_small(&Sequential, latency, batches, 16, reps);
    let parallel = time_many_small(&Parallel::with_threads(WIDTH), latency, batches, 16, reps);
    let pool = WorkerPool::with_threads(WIDTH);
    let pooled = time_many_small(&pool, latency, batches, 16, reps);
    report.record(scenario, "sequential", sequential, 1.0);
    report.record(scenario, "parallel", parallel, sequential / parallel);
    report.record(scenario, "worker_pool", pooled, sequential / pooled);
    let pool_vs_parallel = parallel / pooled;
    println!(
        "{scenario:<28} seq {sequential:>10.0} ns/probe | par {parallel:>10.0} \
         ({:>5.2}x) | pool {pooled:>10.0} ({:>5.2}x) | pool/par {pool_vs_parallel:>5.2}x",
        sequential / parallel,
        sequential / pooled,
    );
    if pool_vs_parallel < 2.0 && !smoke {
        println!(
            "WARNING: worker_pool is only {pool_vs_parallel:.2}x over parallel on \
             {scenario} (target: >= 2x)"
        );
    }

    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
