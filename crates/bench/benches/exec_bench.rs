//! Executor-backend comparison on a genuinely expensive UDF.
//!
//! The paper's setting is a UDF whose single call dwarfs everything else
//! (credit checks, image classification). Here a [`SlowUdf`] sleeps 100µs
//! per call; the benchmarks compare the `Sequential` and `Parallel`
//! backends on the same audited workloads. On a ≥4-core machine the
//! parallel backend is expected to clear a 2× wall-clock speedup (the
//! sleeps overlap even on fewer cores, so it usually clears it there
//! too); `speedup_report` prints the measured ratio directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use expred_bench::BenchReport;
use expred_core::execute::execute_plan_with;
use expred_core::plan::Plan;
use expred_exec::{Executor, Parallel, Sequential};
use expred_stats::rng::Prng;
use expred_table::datasets::{Dataset, DatasetSpec, LABEL_COLUMN, PROSPER};
use expred_udf::{OracleUdf, SlowUdf, UdfInvoker};
use std::hint::black_box;
use std::time::{Duration, Instant};

const UDF_LATENCY: Duration = Duration::from_micros(100);

fn slow_udf() -> SlowUdf<OracleUdf> {
    SlowUdf::new(OracleUdf::new(LABEL_COLUMN), UDF_LATENCY)
}

fn dataset() -> Dataset {
    Dataset::generate(
        DatasetSpec {
            rows: 4_000,
            ..PROSPER
        },
        1,
    )
}

/// Raw batch throughput: 1024 fresh 100µs probes per iteration.
fn bench_batch_backends(c: &mut Criterion) {
    let ds = dataset();
    let udf = slow_udf();
    let batch: Vec<usize> = (0..1_024).collect();
    let backends: Vec<(&str, Box<dyn Executor>)> = vec![
        ("sequential", Box::new(Sequential)),
        ("parallel_4", Box::new(Parallel::with_threads(4))),
        ("parallel_machine", Box::new(Parallel::new())),
    ];
    let mut group = c.benchmark_group("slow_udf_batch_1024x100us");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.sample_size(10);
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::from_parameter(name), backend, |b, backend| {
            b.iter(|| {
                // Fresh invoker: every probe is a real (slow) call.
                let invoker = UdfInvoker::new(&udf, &ds.table);
                black_box(invoker.evaluate_batch(backend.as_ref(), &batch))
            })
        });
    }
    group.finish();
}

/// The probabilistic executor end to end under a fractional plan.
fn bench_execute_plan_backends(c: &mut Criterion) {
    let ds = dataset();
    let udf = slow_udf();
    let groups = ds.table.group_by("grade").unwrap();
    let k = groups.num_groups();
    let plan = Plan::new(vec![0.8; k], vec![0.5; k]);
    let backends: Vec<(&str, Box<dyn Executor>)> = vec![
        ("sequential", Box::new(Sequential)),
        ("parallel_8", Box::new(Parallel::with_threads(8))),
    ];
    let mut group = c.benchmark_group("execute_plan_slow_udf");
    group.throughput(Throughput::Elements(ds.table.num_rows() as u64));
    group.sample_size(10);
    for (name, backend) in &backends {
        group.bench_with_input(BenchmarkId::from_parameter(name), backend, |b, backend| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let invoker = UdfInvoker::new(&udf, &ds.table);
                let mut rng = Prng::seeded(seed);
                black_box(execute_plan_with(
                    &plan,
                    &groups,
                    &invoker,
                    &mut rng,
                    backend.as_ref(),
                ))
            })
        });
    }
    group.finish();
}

/// Prints the sequential/parallel wall-clock ratio (and asserts the two
/// backends agreed on every answer while measuring it).
fn speedup_report(c: &mut Criterion) {
    let ds = dataset();
    let udf = slow_udf();
    let batch: Vec<usize> = (0..1_024).collect();
    let time = |backend: &dyn Executor| {
        let invoker = UdfInvoker::new(&udf, &ds.table);
        let start = Instant::now();
        let answers = invoker.evaluate_batch(backend, &batch);
        (start.elapsed().as_secs_f64(), answers)
    };
    let (seq_secs, seq_answers) = time(&Sequential);
    // At least 4 workers: sleeping probes overlap even when cores are
    // scarce, so the report is meaningful on small CI boxes too.
    let parallel = Parallel::with_threads(Parallel::new().threads().max(4));
    let (par_secs, par_answers) = time(&parallel);
    assert_eq!(seq_answers, par_answers, "backends disagreed");
    println!(
        "speedup_report: sequential {seq_secs:.3}s, parallel({threads} threads) {par_secs:.3}s \
         -> {ratio:.1}x",
        threads = parallel.threads(),
        ratio = seq_secs / par_secs
    );
    // Persist the trajectory: BENCH_exec.json alongside the text report.
    let per_probe = |secs: f64| secs * 1e9 / batch.len() as f64;
    let mut report = BenchReport::new("exec");
    report.record(
        "invoker_batch_1024_udf_100us",
        "sequential",
        per_probe(seq_secs),
        1.0,
    );
    report.record(
        "invoker_batch_1024_udf_100us",
        "parallel",
        per_probe(par_secs),
        seq_secs / par_secs,
    );
    match report.write() {
        Ok(path) => println!("results written to {}", path.display()),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
    // Keep the shim's reporting shape consistent.
    c.bench_function("speedup_report/noop", |b| b.iter(|| black_box(0)));
}

criterion_group!(
    benches,
    bench_batch_backends,
    bench_execute_plan_backends,
    speedup_report
);
criterion_main!(benches);
