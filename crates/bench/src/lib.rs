//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§6), plus shared utilities for the Criterion benchmarks.
//!
//! The binary `experiments` (in `src/bin`) exposes one subcommand per
//! table/figure; see DESIGN.md's per-experiment index for the mapping.

pub mod experiments;
pub mod harness;
pub mod report;

pub use harness::{HarnessConfig, TextTable};
pub use report::{BenchRecord, BenchReport};
