//! One function per table/figure of the paper's evaluation (§6).
//!
//! Each function returns a [`TextTable`] whose rows mirror the series the
//! paper plots; EXPERIMENTS.md records the rendered output next to the
//! paper's own numbers. Defaults follow §6.1: `α = β = ρ = 0.8`,
//! `o_r = 1`, `o_e = 3`, 5% sampling for Experiment 1.

use crate::harness::{fmt, paper_datasets, run_many, summarize, HarnessConfig, TextTable};
use expred_core::baselines::{run_learning, run_multiple};
use expred_core::optimize::CorrelationModel;
use expred_core::pipeline::{
    run_intel_sample, run_naive, run_optimal, IntelSampleConfig, PredictorChoice,
};
use expred_core::query::QuerySpec;
use expred_core::sampling::SampleSizeRule;
use expred_table::datasets::Dataset;
use expred_udf::CostModel;

fn fixed(ds: &Dataset) -> PredictorChoice {
    PredictorChoice::Fixed(ds.predictor().to_owned())
}

/// Table 2: selectivity and savings (vs Naive, vs the best ML baseline)
/// per dataset.
pub fn table2(cfg: &HarnessConfig) -> TextTable {
    let datasets = paper_datasets(cfg.seed);
    let mut t = TextTable::new(vec![
        "Dataset",
        "Selectivity",
        "Savings vs. Naive",
        "Savings vs. ML",
    ]);
    for ds in &datasets {
        let spec = QuerySpec::paper_default();
        let intel_cfg = IntelSampleConfig::experiment1(PredictorChoice::Auto {
            label_fraction: 0.01,
        });
        let intel = summarize(
            &run_many(cfg.iterations, cfg.seed, |s| {
                run_intel_sample(ds, &intel_cfg, s)
            }),
            spec.alpha,
            spec.beta,
        );
        let naive = summarize(
            &run_many(cfg.iterations, cfg.seed, |s| run_naive(ds, &spec, s)),
            spec.alpha,
            spec.beta,
        );
        // The ML comparison uses the stronger (cheaper) of the two
        // baselines, as the paper's Table 2 reports a single ML column.
        let ml_iters = cfg.iterations.clamp(1, 5);
        let learning = summarize(
            &run_many(ml_iters, cfg.seed, |s| run_learning(ds, &spec, s)),
            spec.alpha,
            spec.beta,
        );
        let multiple = summarize(
            &run_many(ml_iters, cfg.seed, |s| run_multiple(ds, &spec, 5, s)),
            spec.alpha,
            spec.beta,
        );
        let ml_eval = learning.evaluated.min(multiple.evaluated);
        let stats = ds.group_stats(ds.predictor());
        let vs_naive = 100.0 * (1.0 - intel.evaluated / naive.evaluated);
        let vs_ml = 100.0 * (1.0 - intel.evaluated / ml_eval);
        t.push_row(vec![
            ds.spec.name.to_owned(),
            fmt(stats.overall_selectivity, 2),
            format!("{}%", fmt(vs_naive, 0)),
            format!("{}%", fmt(vs_ml, 0)),
        ]);
    }
    t
}

/// Table 3: group statistics per dataset (achieved by the synthetic
/// clones) next to the paper's published values.
pub fn table3(cfg: &HarnessConfig) -> TextTable {
    let datasets = paper_datasets(cfg.seed);
    let mut t = TextTable::new(vec![
        "Dataset",
        "Num. Groups",
        "Size Dev. (paper)",
        "Size Dev. (ours)",
        "Sel. Dev. (paper)",
        "Sel. Dev. (ours)",
        "Corr. (paper)",
        "Corr. (ours)",
    ]);
    for ds in &datasets {
        let stats = ds.group_stats(ds.predictor());
        t.push_row(vec![
            ds.spec.name.to_owned(),
            stats.num_groups.to_string(),
            fmt(ds.spec.size_dev, 0),
            fmt(stats.size_dev, 0),
            fmt(ds.spec.sel_dev, 2),
            fmt(stats.sel_dev, 2),
            fmt(ds.spec.size_sel_corr, 2),
            fmt(stats.size_sel_corr, 2),
        ]);
    }
    t
}

/// Figure 1(a): evaluations for Naive vs Intel-Sample vs Optimal.
pub fn fig1a(cfg: &HarnessConfig) -> TextTable {
    let datasets = paper_datasets(cfg.seed);
    let spec = QuerySpec::paper_default();
    let mut t = TextTable::new(vec!["Dataset", "Naive", "Intel-Sample", "Optimal"]);
    for ds in &datasets {
        let intel_cfg = IntelSampleConfig::experiment1(fixed(ds));
        let naive = summarize(
            &run_many(cfg.iterations, cfg.seed, |s| run_naive(ds, &spec, s)),
            spec.alpha,
            spec.beta,
        );
        let intel = summarize(
            &run_many(cfg.iterations, cfg.seed, |s| {
                run_intel_sample(ds, &intel_cfg, s)
            }),
            spec.alpha,
            spec.beta,
        );
        let optimal = summarize(
            &run_many(cfg.iterations, cfg.seed, |s| {
                run_optimal(ds, &spec, ds.predictor(), s)
            }),
            spec.alpha,
            spec.beta,
        );
        t.push_row(vec![
            ds.spec.name.to_owned(),
            fmt(naive.evaluated, 0),
            fmt(intel.evaluated, 0),
            fmt(optimal.evaluated, 0),
        ]);
    }
    t
}

/// Figure 1(b): evaluations for the ML baselines vs Intel-Sample.
pub fn fig1b(cfg: &HarnessConfig) -> TextTable {
    let datasets = paper_datasets(cfg.seed);
    let spec = QuerySpec::paper_default();
    let mut t = TextTable::new(vec!["Dataset", "Learning", "Multiple", "Intel-Sample"]);
    let ml_iters = cfg.iterations.clamp(1, 8);
    for ds in &datasets {
        let intel_cfg = IntelSampleConfig::experiment1(fixed(ds));
        let learning = summarize(
            &run_many(ml_iters, cfg.seed, |s| run_learning(ds, &spec, s)),
            spec.alpha,
            spec.beta,
        );
        let multiple = summarize(
            &run_many(ml_iters, cfg.seed, |s| run_multiple(ds, &spec, 5, s)),
            spec.alpha,
            spec.beta,
        );
        let intel = summarize(
            &run_many(cfg.iterations, cfg.seed, |s| {
                run_intel_sample(ds, &intel_cfg, s)
            }),
            spec.alpha,
            spec.beta,
        );
        t.push_row(vec![
            ds.spec.name.to_owned(),
            fmt(learning.evaluated, 0),
            fmt(multiple.evaluated, 0),
            fmt(intel.evaluated, 0),
        ]);
    }
    t
}

/// Figure 1(c): evaluations vs the Two-Third-Power parameter `num`, with
/// the **logistic-regression virtual column** as the predictor.
pub fn fig1c(cfg: &HarnessConfig) -> TextTable {
    let datasets = paper_datasets(cfg.seed);
    let spec = QuerySpec::paper_default();
    let nums = [0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 11.0, 14.0];
    let mut t = TextTable::new(vec!["num", "lc", "prosper", "census", "marketing"]);
    for &num in &nums {
        let mut row = vec![fmt(num, 1)];
        for ds in &datasets {
            let intel_cfg = IntelSampleConfig {
                spec,
                rule: SampleSizeRule::TwoThirdPower(num),
                corr: CorrelationModel::Independent,
                predictor: PredictorChoice::Virtual {
                    buckets: 10,
                    label_fraction: 0.01,
                },
            };
            let stats = summarize(
                &run_many(cfg.iterations, cfg.seed, |s| {
                    run_intel_sample(ds, &intel_cfg, s)
                }),
                spec.alpha,
                spec.beta,
            );
            row.push(fmt(stats.evaluated, 0));
        }
        // Reorder row cells to header order (datasets generate in the
        // Table-2 order lc, prosper, census, marketing already).
        t.push_row(row);
    }
    t
}

/// Figures 2(a)/2(b): fraction of runs satisfying the precision (resp.
/// recall) constraint, as ρ sweeps — every value must sit above `x = y`.
pub fn fig2ab(cfg: &HarnessConfig, recall_side: bool) -> TextTable {
    let datasets = paper_datasets(cfg.seed);
    let rhos = [0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95];
    let mut t = TextTable::new(vec!["rho", "lc", "prosper", "census", "marketing"]);
    for &rho in &rhos {
        let mut row = vec![fmt(rho, 2)];
        for ds in &datasets {
            let spec = QuerySpec::new(0.8, 0.8, rho, CostModel::PAPER_DEFAULT);
            let intel_cfg = IntelSampleConfig {
                spec,
                rule: SampleSizeRule::Fraction(0.05),
                corr: CorrelationModel::Independent,
                predictor: fixed(ds),
            };
            let stats = summarize(
                &run_many(cfg.rho_iterations, cfg.seed, |s| {
                    run_intel_sample(ds, &intel_cfg, s)
                }),
                spec.alpha,
                spec.beta,
            );
            let frac = if recall_side {
                stats.recall_ok
            } else {
                stats.precision_ok
            };
            row.push(fmt(frac, 2));
        }
        t.push_row(row);
    }
    t
}

/// Figure 2(c): evaluations vs the precision bound α (β = 0.8) on LC with
/// the Grade predictor, for `num/α ∈ {2.5, 3.5, 4.5}`.
pub fn fig2c(cfg: &HarnessConfig) -> TextTable {
    let ds = &paper_datasets(cfg.seed)[0]; // lc
    let alphas = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let ratios = [2.5, 3.5, 4.5];
    let mut t = TextTable::new(vec![
        "alpha",
        "num/alpha 2.5",
        "num/alpha 3.5",
        "num/alpha 4.5",
    ]);
    for &alpha in &alphas {
        let mut row = vec![fmt(alpha, 1)];
        for &ratio in &ratios {
            let spec = QuerySpec::new(alpha, 0.8, 0.8, CostModel::PAPER_DEFAULT);
            let intel_cfg = IntelSampleConfig {
                spec,
                rule: SampleSizeRule::TwoThirdPower(ratio * alpha),
                corr: CorrelationModel::Independent,
                predictor: fixed(ds),
            };
            let stats = summarize(
                &run_many(cfg.iterations, cfg.seed, |s| {
                    run_intel_sample(ds, &intel_cfg, s)
                }),
                spec.alpha,
                spec.beta,
            );
            row.push(fmt(stats.evaluated, 0));
        }
        t.push_row(row);
    }
    t
}

/// Figure 3(a): evaluations vs the per-group sample count `c` of the
/// Constant scheme (fixed predictors; U-shaped curves).
pub fn fig3a(cfg: &HarnessConfig) -> TextTable {
    sweep_sampling(cfg, true)
}

/// Figure 3(b): evaluations vs `num` of the Two-Third-Power scheme
/// (fixed predictors; optimum near `num ∈ [2α, 5α]`).
pub fn fig3b(cfg: &HarnessConfig) -> TextTable {
    sweep_sampling(cfg, false)
}

fn sweep_sampling(cfg: &HarnessConfig, constant: bool) -> TextTable {
    let datasets = paper_datasets(cfg.seed);
    let spec = QuerySpec::paper_default();
    let mut t = TextTable::new(vec![
        if constant { "c" } else { "num" },
        "lc",
        "prosper",
        "census",
        "marketing",
    ]);
    let constants = [
        25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 3500.0, 5000.0,
    ];
    let nums = [0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 13.0, 16.0];
    let params: &[f64] = if constant { &constants } else { &nums };
    for &p in params {
        let mut row = vec![fmt(p, if constant { 0 } else { 1 })];
        for ds in &datasets {
            let rule = if constant {
                SampleSizeRule::Constant(p as usize)
            } else {
                SampleSizeRule::TwoThirdPower(p)
            };
            let intel_cfg = IntelSampleConfig {
                spec,
                rule,
                corr: CorrelationModel::Independent,
                predictor: fixed(ds),
            };
            let stats = summarize(
                &run_many(cfg.iterations, cfg.seed, |s| {
                    run_intel_sample(ds, &intel_cfg, s)
                }),
                spec.alpha,
                spec.beta,
            );
            row.push(fmt(stats.evaluated, 0));
        }
        t.push_row(row);
    }
    t
}

/// Figure 3(c): retrievals vs the recall bound β (α = 0.8) on LC, for
/// `num ∈ {2.5, 3.5, 4.5}`.
pub fn fig3c(cfg: &HarnessConfig) -> TextTable {
    let ds = &paper_datasets(cfg.seed)[0]; // lc
    let betas = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9];
    let nums = [2.5, 3.5, 4.5];
    let mut t = TextTable::new(vec!["beta", "num 2.5", "num 3.5", "num 4.5"]);
    for &beta in &betas {
        let mut row = vec![fmt(beta, 1)];
        for &num in &nums {
            let spec = QuerySpec::new(0.8, beta, 0.8, CostModel::PAPER_DEFAULT);
            let intel_cfg = IntelSampleConfig {
                spec,
                rule: SampleSizeRule::TwoThirdPower(num),
                corr: CorrelationModel::Independent,
                predictor: fixed(ds),
            };
            let stats = summarize(
                &run_many(cfg.iterations, cfg.seed, |s| {
                    run_intel_sample(ds, &intel_cfg, s)
                }),
                spec.alpha,
                spec.beta,
            );
            row.push(fmt(stats.retrieved, 0));
        }
        t.push_row(row);
    }
    t
}

/// §6.2.1's column-robustness sweep: Intel-Sample's evaluations when
/// *every* candidate column is forced as the predictor, against the Naive
/// ceiling.
pub fn columns(cfg: &HarnessConfig) -> TextTable {
    let ds = &paper_datasets(cfg.seed)[0]; // lc
    let spec = QuerySpec::paper_default();
    let naive = summarize(
        &run_many(cfg.iterations, cfg.seed, |s| run_naive(ds, &spec, s)),
        spec.alpha,
        spec.beta,
    );
    let mut rows: Vec<(String, f64)> = Vec::new();
    for col in ds.candidate_columns() {
        let intel_cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed(col.clone()));
        let stats = summarize(
            &run_many(cfg.iterations, cfg.seed, |s| {
                run_intel_sample(ds, &intel_cfg, s)
            }),
            spec.alpha,
            spec.beta,
        );
        rows.push((col, stats.evaluated));
    }
    rows.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    let mut t = TextTable::new(vec!["Predictor column", "Evaluations"]);
    for (col, eval) in rows {
        t.push_row(vec![col, fmt(eval, 0)]);
    }
    t.push_row(vec!["(naive ceiling)".to_owned(), fmt(naive.evaluated, 0)]);
    t
}

/// §6.2's runtime claim: Intel-Sample's non-UDF compute time per dataset
/// (the paper reports "less than a second").
pub fn timing(cfg: &HarnessConfig) -> TextTable {
    let datasets = paper_datasets(cfg.seed);
    let spec = QuerySpec::paper_default();
    let mut t = TextTable::new(vec!["Dataset", "Compute seconds (mean)"]);
    for ds in &datasets {
        let intel_cfg = IntelSampleConfig::experiment1(PredictorChoice::Auto {
            label_fraction: 0.01,
        });
        let stats = summarize(
            &run_many(cfg.iterations.clamp(1, 5), cfg.seed, |s| {
                run_intel_sample(ds, &intel_cfg, s)
            }),
            spec.alpha,
            spec.beta,
        );
        t.push_row(vec![ds.spec.name.to_owned(), fmt(stats.compute_seconds, 3)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            iterations: 2,
            rho_iterations: 2,
            seed: 42,
        }
    }

    #[test]
    fn table3_has_four_rows() {
        let t = table3(&tiny());
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.cell(0, 0), "lc");
        assert_eq!(t.cell(3, 0), "marketing");
    }

    #[test]
    fn fig1a_orders_naive_above_optimal() {
        let t = fig1a(&tiny());
        assert_eq!(t.num_rows(), 4);
        for r in 0..4 {
            let naive: f64 = t.cell(r, 1).parse().unwrap();
            let intel: f64 = t.cell(r, 2).parse().unwrap();
            let optimal: f64 = t.cell(r, 3).parse().unwrap();
            assert!(naive > intel, "row {r}: naive {naive} vs intel {intel}");
            assert!(
                intel >= optimal * 0.9,
                "row {r}: intel {intel} vs optimal {optimal}"
            );
        }
    }
}
