//! Shared experiment plumbing: iteration fan-out, aggregation, and
//! plain-text table rendering.

use expred_core::pipeline::RunOutcome;
use expred_stats::descriptive::Accumulator;
use expred_table::datasets::{all_specs, Dataset};

/// Global experiment knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessConfig {
    /// Iterations for cost experiments (the paper uses 50–100).
    pub iterations: usize,
    /// Iterations per ρ value for the accuracy experiments (paper: 100).
    pub rho_iterations: usize,
    /// Base seed; every iteration derives `seed + i`.
    pub seed: u64,
}

impl HarnessConfig {
    /// Paper-scale iteration counts.
    pub fn full() -> Self {
        Self {
            iterations: 50,
            rho_iterations: 100,
            seed: 7_001,
        }
    }

    /// Reduced counts for fast regeneration.
    pub fn quick() -> Self {
        Self {
            iterations: 8,
            rho_iterations: 30,
            seed: 7_001,
        }
    }
}

/// Generates the paper's four datasets with a fixed seed.
pub fn paper_datasets(seed: u64) -> Vec<Dataset> {
    all_specs()
        .into_iter()
        .map(|spec| Dataset::generate(spec, seed))
        .collect()
}

/// Runs `f(seed)` for `iterations` derived seeds, fanning out across a
/// couple of worker threads (the experiment binaries are run on small
/// machines; heavy parallelism buys little here).
pub fn run_many<F>(iterations: usize, base_seed: u64, f: F) -> Vec<RunOutcome>
where
    F: Fn(u64) -> RunOutcome + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(iterations.max(1));
    let seeds: Vec<u64> = (0..iterations as u64).map(|i| base_seed + i).collect();
    let mut out: Vec<Option<RunOutcome>> = (0..iterations).map(|_| None).collect();
    let chunk = iterations.div_ceil(workers.max(1));
    std::thread::scope(|scope| {
        for (slice, seed_chunk) in out.chunks_mut(chunk).zip(seeds.chunks(chunk)) {
            let f = &f;
            scope.spawn(move || {
                for (slot, &seed) in slice.iter_mut().zip(seed_chunk) {
                    *slot = Some(f(seed));
                }
            });
        }
    });
    out.into_iter()
        .map(|o| o.expect("all slots filled"))
        .collect()
}

/// Summary statistics over a set of runs.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Mean UDF evaluations per run.
    pub evaluated: f64,
    /// Mean retrievals per run.
    pub retrieved: f64,
    /// Mean total cost per run.
    pub cost: f64,
    /// Mean achieved precision.
    pub precision: f64,
    /// Mean achieved recall.
    pub recall: f64,
    /// Fraction of runs meeting the precision bound.
    pub precision_ok: f64,
    /// Fraction of runs meeting the recall bound.
    pub recall_ok: f64,
    /// Mean wall-clock compute seconds.
    pub compute_seconds: f64,
}

/// Aggregates outcomes against the bounds they were run with.
pub fn summarize(outcomes: &[RunOutcome], alpha: f64, beta: f64) -> RunStats {
    let mut eval = Accumulator::new();
    let mut retr = Accumulator::new();
    let mut cost = Accumulator::new();
    let mut prec = Accumulator::new();
    let mut rec = Accumulator::new();
    let mut secs = Accumulator::new();
    let mut p_ok = 0usize;
    let mut r_ok = 0usize;
    for o in outcomes {
        eval.push(o.counts.evaluated as f64);
        retr.push(o.counts.retrieved as f64);
        cost.push(o.cost);
        prec.push(o.summary.precision);
        rec.push(o.summary.recall);
        secs.push(o.compute_seconds);
        if o.summary.precision >= alpha {
            p_ok += 1;
        }
        if o.summary.recall >= beta {
            r_ok += 1;
        }
    }
    let n = outcomes.len().max(1) as f64;
    RunStats {
        evaluated: eval.mean(),
        retrieved: retr.mean(),
        cost: cost.mean(),
        precision: prec.mean(),
        recall: rec.mean(),
        precision_ok: p_ok as f64 / n,
        recall_ok: r_ok as f64 / n,
        compute_seconds: secs.mean(),
    }
}

/// A plain-text table with aligned columns and a markdown renderer.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Cell accessor (for tests).
    pub fn cell(&self, row: usize, col: usize) -> &str {
        &self.rows[row][col]
    }

    /// Renders with space-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, &w)| format!("{cell:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Formats a float with the given number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_markdown() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.push_row(vec!["short", "1"]);
        t.push_row(vec!["a-much-longer-name", "2.5"]);
        let text = t.render();
        assert!(text.contains("a-much-longer-name"));
        assert!(text.lines().count() == 4);
        let md = t.render_markdown();
        assert!(md.starts_with("| name | value |"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.cell(1, 1), "2.5");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }

    #[test]
    fn run_many_is_deterministic_and_ordered() {
        use expred_core::{run_naive, QuerySpec};
        use expred_table::datasets::{Dataset, DatasetSpec, PROSPER};
        let ds = Dataset::generate(
            DatasetSpec {
                rows: 1_000,
                ..PROSPER
            },
            1,
        );
        let spec = QuerySpec::paper_default();
        let a = run_many(4, 10, |seed| run_naive(&ds, &spec, seed));
        let b = run_many(4, 10, |seed| run_naive(&ds, &spec, seed));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.counts, y.counts);
        }
        // Stats aggregate sensibly.
        let stats = summarize(&a, spec.alpha, spec.beta);
        assert!(stats.evaluated > 0.0);
        assert!(stats.precision_ok >= 0.0 && stats.precision_ok <= 1.0);
    }

    #[test]
    fn paper_datasets_generate_all_four() {
        // Tiny smoke check on spec identity only (generation itself is
        // covered in expred-table).
        let specs = expred_table::datasets::all_specs();
        assert_eq!(specs.len(), 4);
    }
}
