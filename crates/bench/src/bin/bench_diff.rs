//! `bench-diff` — compare two `BENCH_<name>.json` artifacts and fail on
//! regressions.
//!
//! ```text
//! cargo run -p expred-bench --bin bench-diff -- OLD.json NEW.json [--threshold 0.2]
//! ```
//!
//! Joins the two reports on `(scenario, backend)` and compares
//! `ns_per_probe`. A row whose new time exceeds the old by more than the
//! threshold (default 20%) is a **regression**; if any exist the process
//! exits nonzero, which is how CI turns a perf trajectory into a gate.
//! Rows present on only one side are reported but not fatal (benches
//! legitimately gain and lose scenarios across PRs), as are failed
//! (`null`) measurements.

use expred_bench::BenchReport;
use std::process::ExitCode;

struct Comparison {
    scenario: String,
    backend: String,
    old_ns: f64,
    new_ns: f64,
    /// new/old − 1: positive is slower.
    change: f64,
}

fn load(path: &str) -> Result<BenchReport, String> {
    let json = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&json).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn run(old_path: &str, new_path: &str, threshold: f64) -> Result<bool, String> {
    let old = load(old_path)?;
    let new = load(new_path)?;
    if old.records().is_empty() {
        return Err(format!("{old_path} holds no measurements"));
    }

    let mut compared: Vec<Comparison> = Vec::new();
    let mut only_old: Vec<String> = Vec::new();
    let mut only_new: Vec<String> = Vec::new();
    let mut unmeasured = 0usize;
    for record in old.records() {
        match new
            .records()
            .iter()
            .find(|r| r.scenario == record.scenario && r.backend == record.backend)
        {
            Some(fresh) => {
                if record.ns_per_probe.is_finite()
                    && fresh.ns_per_probe.is_finite()
                    && record.ns_per_probe > 0.0
                {
                    compared.push(Comparison {
                        scenario: record.scenario.clone(),
                        backend: record.backend.clone(),
                        old_ns: record.ns_per_probe,
                        new_ns: fresh.ns_per_probe,
                        change: fresh.ns_per_probe / record.ns_per_probe - 1.0,
                    });
                } else {
                    unmeasured += 1;
                }
            }
            None => only_old.push(format!("{}/{}", record.scenario, record.backend)),
        }
    }
    for record in new.records() {
        if !old
            .records()
            .iter()
            .any(|r| r.scenario == record.scenario && r.backend == record.backend)
        {
            only_new.push(format!("{}/{}", record.scenario, record.backend));
        }
    }
    if compared.is_empty() {
        return Err(format!(
            "{old_path} and {new_path} share no measurable (scenario, backend) rows"
        ));
    }

    println!(
        "bench-diff: {} rows compared (threshold {:.0}%)",
        compared.len(),
        threshold * 100.0
    );
    // Worst first, so the regression (if any) leads the output.
    compared.sort_by(|a, b| b.change.total_cmp(&a.change));
    let mut regressions = 0usize;
    for row in &compared {
        let regressed = row.change > threshold;
        regressions += regressed as usize;
        println!(
            "{} {:<40} {:<22} {:>12.1} -> {:>12.1} ns/probe  {:>+7.1}%",
            if regressed {
                "REGRESSION"
            } else {
                "        ok"
            },
            row.scenario,
            row.backend,
            row.old_ns,
            row.new_ns,
            row.change * 100.0,
        );
    }
    if unmeasured > 0 {
        println!("note: {unmeasured} rows skipped (null/zero measurement on either side)");
    }
    if !only_old.is_empty() {
        println!("note: dropped since old report: {}", only_old.join(", "));
    }
    if !only_new.is_empty() {
        println!("note: new since old report: {}", only_new.join(", "));
    }
    if regressions > 0 {
        println!(
            "bench-diff: {regressions} regression(s) beyond {:.0}%",
            threshold * 100.0
        );
    } else {
        println!("bench-diff: no regressions");
    }
    Ok(regressions == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut threshold = 0.20f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!(
                    "compare two BENCH_<name>.json artifacts; exit nonzero on regressions\n\n\
                     usage: bench-diff OLD.json NEW.json [--threshold 0.2]"
                );
                return ExitCode::SUCCESS;
            }
            "--threshold" => match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) if t.is_finite() && t >= 0.0 => threshold = t,
                _ => {
                    eprintln!("--threshold needs a nonnegative number");
                    return ExitCode::from(2);
                }
            },
            path => paths.push(path),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: bench-diff OLD.json NEW.json [--threshold 0.2]");
        return ExitCode::from(2);
    };
    match run(old_path, new_path, threshold) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(err) => {
            eprintln!("bench-diff: {err}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_report(dir: &std::path::Path, file: &str, rows: &[(&str, &str, f64)]) -> String {
        let mut report = BenchReport::new("t");
        for (scenario, backend, ns) in rows {
            report.record(*scenario, *backend, *ns, 1.0);
        }
        let path = dir.join(file);
        std::fs::write(&path, report.to_json()).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn flags_only_regressions_beyond_threshold() {
        let dir = std::env::temp_dir().join("expred_bench_diff_test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = write_report(
            &dir,
            "old.json",
            &[("a", "seq", 100.0), ("b", "seq", 100.0)],
        );
        let ok = write_report(&dir, "ok.json", &[("a", "seq", 110.0), ("b", "seq", 90.0)]);
        let bad = write_report(
            &dir,
            "bad.json",
            &[("a", "seq", 150.0), ("b", "seq", 100.0)],
        );
        assert_eq!(run(&old, &ok, 0.2), Ok(true), "within threshold");
        assert_eq!(run(&old, &bad, 0.2), Ok(false), "50% slower must flag");
        assert_eq!(run(&old, &bad, 0.6), Ok(true), "threshold is respected");
        // Self-comparison is always clean.
        assert_eq!(run(&old, &old, 0.2), Ok(true));
    }

    #[test]
    fn disjoint_reports_error() {
        let dir = std::env::temp_dir().join("expred_bench_diff_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let old = write_report(&dir, "old.json", &[("a", "seq", 100.0)]);
        let new = write_report(&dir, "new.json", &[("z", "seq", 100.0)]);
        assert!(run(&old, &new, 0.2).is_err());
        assert!(run("/does/not/exist.json", &old, 0.2).is_err());
    }
}
