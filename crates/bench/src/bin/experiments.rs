//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [--quick] [--iters N] [--seed S] [--markdown] <which>...
//! ```
//!
//! `<which>` is any of: `table2 table3 fig1a fig1b fig1c fig2a fig2b fig2c
//! fig3a fig3b fig3c columns timing all`. Run with `--quick` for reduced
//! iteration counts. Output is plain text (or markdown with `--markdown`).

use expred_bench::experiments;
use expred_bench::harness::{HarnessConfig, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = HarnessConfig::full();
    let mut which: Vec<String> = Vec::new();
    let mut markdown = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => cfg = HarnessConfig::quick(),
            "--markdown" => markdown = true,
            "--iters" => {
                i += 1;
                cfg.iterations = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--iters needs a number"));
                cfg.rho_iterations = cfg.rho_iterations.min(cfg.iterations * 4);
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            other if other.starts_with("--") => usage(&format!("unknown flag {other}")),
            other => which.push(other.to_owned()),
        }
        i += 1;
    }
    if which.is_empty() {
        usage("no experiment named");
    }
    if which.iter().any(|w| w == "all") {
        which = vec![
            "table2", "table3", "fig1a", "fig1b", "fig1c", "fig2a", "fig2b", "fig2c", "fig3a",
            "fig3b", "fig3c", "columns", "timing",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }

    eprintln!(
        "# config: iterations={} rho_iterations={} seed={}",
        cfg.iterations, cfg.rho_iterations, cfg.seed
    );
    for name in which {
        let started = std::time::Instant::now();
        let (title, table): (&str, TextTable) = match name.as_str() {
            "table2" => (
                "Table 2: selectivities and savings",
                experiments::table2(&cfg),
            ),
            "table3" => (
                "Table 3: group statistics (paper vs ours)",
                experiments::table3(&cfg),
            ),
            "fig1a" => (
                "Figure 1(a): evaluations, Naive / Intel-Sample / Optimal",
                experiments::fig1a(&cfg),
            ),
            "fig1b" => (
                "Figure 1(b): evaluations, Learning / Multiple / Intel-Sample",
                experiments::fig1b(&cfg),
            ),
            "fig1c" => (
                "Figure 1(c): evaluations vs num (logistic virtual column)",
                experiments::fig1c(&cfg),
            ),
            "fig2a" => (
                "Figure 2(a): precision-constraint satisfaction vs rho",
                experiments::fig2ab(&cfg, false),
            ),
            "fig2b" => (
                "Figure 2(b): recall-constraint satisfaction vs rho",
                experiments::fig2ab(&cfg, true),
            ),
            "fig2c" => (
                "Figure 2(c): evaluations vs alpha (LC, beta = 0.8)",
                experiments::fig2c(&cfg),
            ),
            "fig3a" => (
                "Figure 3(a): evaluations vs c (Constant sampling)",
                experiments::fig3a(&cfg),
            ),
            "fig3b" => (
                "Figure 3(b): evaluations vs num (Two-Third-Power sampling)",
                experiments::fig3b(&cfg),
            ),
            "fig3c" => (
                "Figure 3(c): retrievals vs beta (LC, alpha = 0.8)",
                experiments::fig3c(&cfg),
            ),
            "columns" => (
                "Section 6.2.1: per-column robustness sweep (LC)",
                experiments::columns(&cfg),
            ),
            "timing" => (
                "Section 6.2: optimizer compute time",
                experiments::timing(&cfg),
            ),
            other => usage(&format!("unknown experiment {other}")),
        };
        println!("\n== {title} ==");
        if markdown {
            print!("{}", table.render_markdown());
        } else {
            print!("{}", table.render());
        }
        eprintln!("# {name} done in {:.1}s", started.elapsed().as_secs_f64());
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: experiments [--quick] [--iters N] [--seed S] [--markdown] \
         <table2|table3|fig1a|fig1b|fig1c|fig2a|fig2b|fig2c|fig3a|fig3b|fig3c|columns|timing|all>..."
    );
    std::process::exit(2);
}
