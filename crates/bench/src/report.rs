//! Machine-readable benchmark reports: `BENCH_<name>.json`.
//!
//! The text a bench prints is for humans watching one run; the JSON file
//! is for the *perf trajectory* — every PR's bench run leaves a
//! comparable artifact, so a regression is a diff, not an anecdote. The
//! schema is deliberately flat (one record per `(scenario, backend)`
//! measurement) and hand-serialized, because the workspace builds
//! offline with no serde:
//!
//! ```json
//! {
//!   "bench": "pool",
//!   "results": [
//!     {
//!       "scenario": "batch_512_udf_100us",
//!       "backend": "worker_pool",
//!       "ns_per_probe": 13441.7,
//!       "speedup_vs_baseline": 7.6
//!     }
//!   ]
//! }
//! ```
//!
//! `speedup_vs_baseline` is relative to whichever backend the bench
//! declares as its baseline for the scenario (by convention
//! `sequential`; the baseline row itself reports `1.0`).

use std::io::Write as _;
use std::path::PathBuf;

/// One measurement row of a bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which workload shape was measured (e.g. `batch_512_udf_100us`).
    pub scenario: String,
    /// Which executor/backend ran it.
    pub backend: String,
    /// Mean wall-clock nanoseconds per probe.
    pub ns_per_probe: f64,
    /// Wall-clock ratio baseline/this for the same scenario (1.0 for the
    /// baseline itself; >1 is faster than baseline).
    pub speedup_vs_baseline: f64,
}

/// A bench's accumulated records, flushed to `BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report for the bench called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one measurement row.
    pub fn record(
        &mut self,
        scenario: impl Into<String>,
        backend: impl Into<String>,
        ns_per_probe: f64,
        speedup_vs_baseline: f64,
    ) {
        self.records.push(BenchRecord {
            scenario: scenario.into(),
            backend: backend.into(),
            ns_per_probe,
            speedup_vs_baseline,
        });
    }

    /// The rows recorded so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Renders the report as JSON (stable field order, two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"scenario\": \"{}\",\n",
                escape(&r.scenario)
            ));
            out.push_str(&format!("      \"backend\": \"{}\",\n", escape(&r.backend)));
            out.push_str(&format!(
                "      \"ns_per_probe\": {},\n",
                fmt_f64(r.ns_per_probe)
            ));
            out.push_str(&format!(
                "      \"speedup_vs_baseline\": {}\n",
                fmt_f64(r.speedup_vs_baseline)
            ));
            out.push_str(if i + 1 == self.records.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The file the report writes to: `BENCH_<name>.json`, placed in the
    /// workspace root when the bench runs under cargo (so artifacts from
    /// different benches land side by side), else the working directory.
    /// The root is found by walking up from the crate's manifest to the
    /// first ancestor holding a `Cargo.lock` — the depth of the calling
    /// crate inside the workspace doesn't matter.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("CARGO_MANIFEST_DIR")
            .ok()
            .and_then(|manifest| {
                let mut dir = PathBuf::from(manifest);
                loop {
                    if dir.join("Cargo.lock").is_file() {
                        return Some(dir);
                    }
                    if !dir.pop() {
                        return None;
                    }
                }
            })
            .unwrap_or_else(|| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Writes `BENCH_<name>.json`, returning the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }
}

/// JSON has no NaN/Inf; a failed measurement serializes as null.
fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.1}")
    } else {
        "null".to_owned()
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut report = BenchReport::new("demo");
        report.record("batch_8_udf_1us", "sequential", 1000.0, 1.0);
        report.record("batch_8_udf_1us", "worker_pool", 250.0, 4.0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"scenario\": \"batch_8_udf_1us\""));
        assert!(json.contains("\"ns_per_probe\": 250.0"));
        assert!(json.contains("\"speedup_vs_baseline\": 4.0"));
        assert_eq!(json.matches("\"backend\"").count(), 2);
        // Exactly one trailing-comma-free closing per record list.
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(report.records().len(), 2);
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let mut report = BenchReport::new("demo");
        report.record("s", "b", f64::NAN, f64::INFINITY);
        let json = report.to_json();
        assert!(json.contains("\"ns_per_probe\": null"));
        assert!(json.contains("\"speedup_vs_baseline\": null"));
    }

    #[test]
    fn names_are_escaped() {
        let mut report = BenchReport::new("we\"ird");
        report.record("a\\b", "c\nd", 1.0, 1.0);
        let json = report.to_json();
        assert!(json.contains("we\\\"ird"));
        assert!(json.contains("a\\\\b"));
        assert!(json.contains("c\\u000ad"));
    }

    #[test]
    fn path_lands_in_the_workspace_root() {
        let report = BenchReport::new("demo");
        let path = report.path();
        assert!(path.ends_with("BENCH_demo.json"));
    }
}
