//! Machine-readable benchmark reports: `BENCH_<name>.json`.
//!
//! The text a bench prints is for humans watching one run; the JSON file
//! is for the *perf trajectory* — every PR's bench run leaves a
//! comparable artifact, so a regression is a diff, not an anecdote. The
//! schema is deliberately flat (one record per `(scenario, backend)`
//! measurement) and hand-serialized, because the workspace builds
//! offline with no serde:
//!
//! ```json
//! {
//!   "bench": "pool",
//!   "results": [
//!     {
//!       "scenario": "batch_512_udf_100us",
//!       "backend": "worker_pool",
//!       "ns_per_probe": 13441.7,
//!       "speedup_vs_baseline": 7.6
//!     }
//!   ]
//! }
//! ```
//!
//! `speedup_vs_baseline` is relative to whichever backend the bench
//! declares as its baseline for the scenario (by convention
//! `sequential`; the baseline row itself reports `1.0`).

use std::io::Write as _;
use std::path::PathBuf;

/// One measurement row of a bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which workload shape was measured (e.g. `batch_512_udf_100us`).
    pub scenario: String,
    /// Which executor/backend ran it.
    pub backend: String,
    /// Mean wall-clock nanoseconds per probe.
    pub ns_per_probe: f64,
    /// Wall-clock ratio baseline/this for the same scenario (1.0 for the
    /// baseline itself; >1 is faster than baseline).
    pub speedup_vs_baseline: f64,
}

/// A bench's accumulated records, flushed to `BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report for the bench called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one measurement row.
    pub fn record(
        &mut self,
        scenario: impl Into<String>,
        backend: impl Into<String>,
        ns_per_probe: f64,
        speedup_vs_baseline: f64,
    ) {
        self.records.push(BenchRecord {
            scenario: scenario.into(),
            backend: backend.into(),
            ns_per_probe,
            speedup_vs_baseline,
        });
    }

    /// The rows recorded so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Renders the report as JSON (stable field order, two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"scenario\": \"{}\",\n",
                escape(&r.scenario)
            ));
            out.push_str(&format!("      \"backend\": \"{}\",\n", escape(&r.backend)));
            out.push_str(&format!(
                "      \"ns_per_probe\": {},\n",
                fmt_f64(r.ns_per_probe)
            ));
            out.push_str(&format!(
                "      \"speedup_vs_baseline\": {}\n",
                fmt_f64(r.speedup_vs_baseline)
            ));
            out.push_str(if i + 1 == self.records.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The file the report writes to: `BENCH_<name>.json`, placed in the
    /// workspace root when the bench runs under cargo (so artifacts from
    /// different benches land side by side), else the working directory.
    /// The root is found by walking up from the crate's manifest to the
    /// first ancestor holding a `Cargo.lock` — the depth of the calling
    /// crate inside the workspace doesn't matter.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("CARGO_MANIFEST_DIR")
            .ok()
            .and_then(|manifest| {
                let mut dir = PathBuf::from(manifest);
                loop {
                    if dir.join("Cargo.lock").is_file() {
                        return Some(dir);
                    }
                    if !dir.pop() {
                        return None;
                    }
                }
            })
            .unwrap_or_else(|| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Writes `BENCH_<name>.json`, returning the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Parses a report previously rendered by [`BenchReport::to_json`]
    /// (the schema in the module docs; field order within a record does
    /// not matter). The workspace builds offline with no serde, so this
    /// is a small hand-rolled parser for exactly that shape — `bench-diff`
    /// uses it to compare artifacts across PRs.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let mut p = JsonParser::new(json);
        p.expect('{')?;
        let mut name: Option<String> = None;
        let mut records: Option<Vec<BenchRecord>> = None;
        loop {
            let key = p.parse_string()?;
            p.expect(':')?;
            match key.as_str() {
                "bench" => name = Some(p.parse_string()?),
                "results" => {
                    let mut rows = Vec::new();
                    p.expect('[')?;
                    if !p.try_consume(']') {
                        loop {
                            rows.push(p.parse_record()?);
                            if p.try_consume(']') {
                                break;
                            }
                            p.expect(',')?;
                        }
                    }
                    records = Some(rows);
                }
                other => return Err(format!("unexpected top-level field {other:?}")),
            }
            if p.try_consume('}') {
                break;
            }
            p.expect(',')?;
        }
        Ok(Self {
            name: name.ok_or("missing \"bench\" field")?,
            records: records.ok_or("missing \"results\" field")?,
        })
    }
}

/// Mean wall-clock nanoseconds per unit of work: runs `f` once as a
/// warm-up, then `reps` timed repetitions over `units` logical units
/// each. The shared measurement loop behind the `BENCH_<name>.json`
/// emitters.
pub fn measure_ns_per_unit(units: u64, reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(units > 0 && reps > 0, "measure over at least one unit/rep");
    f();
    let begin = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    begin.elapsed().as_nanos() as f64 / (reps as u64 * units) as f64
}

/// Character-level parser for the report's JSON subset (strings with
/// escapes, numbers, `null`).
struct JsonParser<'a> {
    chars: Vec<char>,
    pos: usize,
    source: &'a str,
}

impl<'a> JsonParser<'a> {
    fn new(source: &'a str) -> Self {
        Self {
            chars: source.chars().collect(),
            pos: 0,
            source,
        }
    }

    fn fail(&self, what: &str) -> String {
        format!(
            "{what} at offset {} of {}-char report",
            self.pos,
            self.source.chars().count()
        )
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        if self.try_consume(want) {
            Ok(())
        } else {
            Err(self.fail(&format!("expected {want:?}")))
        }
    }

    fn try_consume(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .chars
                .get(self.pos)
                .ok_or_else(|| self.fail("unterminated string"))?;
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let escape = *self
                        .chars
                        .get(self.pos)
                        .ok_or_else(|| self.fail("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        '"' | '\\' | '/' => out.push(escape),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'u' => {
                            let hex: String = self
                                .chars
                                .get(self.pos..self.pos + 4)
                                .map(|w| w.iter().collect())
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("non-scalar \\u escape"))?,
                            );
                        }
                        other => return Err(self.fail(&format!("bad escape \\{other}"))),
                    }
                }
                other => out.push(other),
            }
        }
    }

    /// A number, or `null` (a failed measurement) as NaN.
    fn parse_number_or_null(&mut self) -> Result<f64, String> {
        self.skip_ws();
        if self.chars[self.pos..].starts_with(&['n', 'u', 'l', 'l']) {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while self
            .chars
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse().map_err(|_| self.fail("expected a number"))
    }

    fn parse_record(&mut self) -> Result<BenchRecord, String> {
        self.expect('{')?;
        let (mut scenario, mut backend) = (None, None);
        let (mut ns_per_probe, mut speedup) = (None, None);
        loop {
            let key = self.parse_string()?;
            self.expect(':')?;
            match key.as_str() {
                "scenario" => scenario = Some(self.parse_string()?),
                "backend" => backend = Some(self.parse_string()?),
                "ns_per_probe" => ns_per_probe = Some(self.parse_number_or_null()?),
                "speedup_vs_baseline" => speedup = Some(self.parse_number_or_null()?),
                other => return Err(self.fail(&format!("unexpected record field {other:?}"))),
            }
            if self.try_consume('}') {
                break;
            }
            self.expect(',')?;
        }
        Ok(BenchRecord {
            scenario: scenario.ok_or("record missing \"scenario\"")?,
            backend: backend.ok_or("record missing \"backend\"")?,
            ns_per_probe: ns_per_probe.ok_or("record missing \"ns_per_probe\"")?,
            speedup_vs_baseline: speedup.ok_or("record missing \"speedup_vs_baseline\"")?,
        })
    }
}

/// JSON has no NaN/Inf; a failed measurement serializes as null.
fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.1}")
    } else {
        "null".to_owned()
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut report = BenchReport::new("demo");
        report.record("batch_8_udf_1us", "sequential", 1000.0, 1.0);
        report.record("batch_8_udf_1us", "worker_pool", 250.0, 4.0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"scenario\": \"batch_8_udf_1us\""));
        assert!(json.contains("\"ns_per_probe\": 250.0"));
        assert!(json.contains("\"speedup_vs_baseline\": 4.0"));
        assert_eq!(json.matches("\"backend\"").count(), 2);
        // Exactly one trailing-comma-free closing per record list.
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(report.records().len(), 2);
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let mut report = BenchReport::new("demo");
        report.record("s", "b", f64::NAN, f64::INFINITY);
        let json = report.to_json();
        assert!(json.contains("\"ns_per_probe\": null"));
        assert!(json.contains("\"speedup_vs_baseline\": null"));
    }

    #[test]
    fn names_are_escaped() {
        let mut report = BenchReport::new("we\"ird");
        report.record("a\\b", "c\nd", 1.0, 1.0);
        let json = report.to_json();
        assert!(json.contains("we\\\"ird"));
        assert!(json.contains("a\\\\b"));
        assert!(json.contains("c\\u000ad"));
    }

    #[test]
    fn path_lands_in_the_workspace_root() {
        let report = BenchReport::new("demo");
        let path = report.path();
        assert!(path.ends_with("BENCH_demo.json"));
    }

    #[test]
    fn json_round_trips() {
        let mut report = BenchReport::new("we\"ird");
        report.record("batch_8_udf_1us", "sequential", 1000.5, 1.0);
        report.record("a\\b", "c\nd", 250.0, 4.0);
        report.record("failed", "b", f64::NAN, f64::INFINITY);
        let parsed = BenchReport::from_json(&report.to_json()).expect("own output parses");
        assert_eq!(parsed.name, report.name);
        assert_eq!(parsed.records().len(), 3);
        assert_eq!(parsed.records()[0], report.records()[0]);
        assert_eq!(parsed.records()[1].scenario, "a\\b");
        assert_eq!(parsed.records()[1].backend, "c\nd");
        // null (failed measurement) round-trips as NaN.
        assert!(parsed.records()[2].ns_per_probe.is_nan());
        assert!(parsed.records()[2].speedup_vs_baseline.is_nan());
    }

    #[test]
    fn parser_rejects_malformed_reports() {
        for bad in [
            "",
            "{",
            "{\"bench\": \"x\"}",
            "{\"results\": []}",
            "{\"bench\": \"x\", \"results\": [{\"scenario\": \"s\"}]}",
            "{\"bench\": \"x\", \"results\": [{\"scenario\": \"s\", \"backend\": \"b\", \
             \"ns_per_probe\": oops, \"speedup_vs_baseline\": 1.0}]}",
        ] {
            assert!(BenchReport::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn empty_results_parse() {
        let report = BenchReport::new("empty");
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert!(parsed.records().is_empty());
    }

    #[test]
    fn measure_counts_units() {
        let mut calls = 0u64;
        let ns = measure_ns_per_unit(10, 3, || calls += 1);
        assert_eq!(calls, 4, "one warm-up + three timed reps");
        assert!(ns >= 0.0);
    }
}
