//! Machine-readable benchmark reports: `BENCH_<name>.json`.
//!
//! The text a bench prints is for humans watching one run; the JSON file
//! is for the *perf trajectory* — every PR's bench run leaves a
//! comparable artifact, so a regression is a diff, not an anecdote. The
//! schema is deliberately flat (one record per `(scenario, backend)`
//! measurement) and hand-serialized, because the workspace builds
//! offline with no serde:
//!
//! ```json
//! {
//!   "bench": "pool",
//!   "results": [
//!     {
//!       "scenario": "batch_512_udf_100us",
//!       "backend": "worker_pool",
//!       "ns_per_probe": 13441.7,
//!       "speedup_vs_baseline": 7.6
//!     }
//!   ]
//! }
//! ```
//!
//! `speedup_vs_baseline` is relative to whichever backend the bench
//! declares as its baseline for the scenario (by convention
//! `sequential`; the baseline row itself reports `1.0`).

use expred_stats::json::{escape, fmt_f64, JsonValue};
use std::io::Write as _;
use std::path::PathBuf;

/// One measurement row of a bench report.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which workload shape was measured (e.g. `batch_512_udf_100us`).
    pub scenario: String,
    /// Which executor/backend ran it.
    pub backend: String,
    /// Mean wall-clock nanoseconds per probe.
    pub ns_per_probe: f64,
    /// Wall-clock ratio baseline/this for the same scenario (1.0 for the
    /// baseline itself; >1 is faster than baseline).
    pub speedup_vs_baseline: f64,
}

/// A bench's accumulated records, flushed to `BENCH_<name>.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: String,
    records: Vec<BenchRecord>,
}

impl BenchReport {
    /// An empty report for the bench called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            records: Vec::new(),
        }
    }

    /// Appends one measurement row.
    pub fn record(
        &mut self,
        scenario: impl Into<String>,
        backend: impl Into<String>,
        ns_per_probe: f64,
        speedup_vs_baseline: f64,
    ) {
        self.records.push(BenchRecord {
            scenario: scenario.into(),
            backend: backend.into(),
            ns_per_probe,
            speedup_vs_baseline,
        });
    }

    /// The rows recorded so far.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Renders the report as JSON (stable field order, two-space indent).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.name)));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!(
                "      \"scenario\": \"{}\",\n",
                escape(&r.scenario)
            ));
            out.push_str(&format!("      \"backend\": \"{}\",\n", escape(&r.backend)));
            out.push_str(&format!(
                "      \"ns_per_probe\": {},\n",
                fmt_f64(r.ns_per_probe)
            ));
            out.push_str(&format!(
                "      \"speedup_vs_baseline\": {}\n",
                fmt_f64(r.speedup_vs_baseline)
            ));
            out.push_str(if i + 1 == self.records.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// The file the report writes to: `BENCH_<name>.json`, placed in the
    /// workspace root when the bench runs under cargo (so artifacts from
    /// different benches land side by side), else the working directory.
    /// The root is found by walking up from the crate's manifest to the
    /// first ancestor holding a `Cargo.lock` — the depth of the calling
    /// crate inside the workspace doesn't matter.
    pub fn path(&self) -> PathBuf {
        let dir = std::env::var("CARGO_MANIFEST_DIR")
            .ok()
            .and_then(|manifest| {
                let mut dir = PathBuf::from(manifest);
                loop {
                    if dir.join("Cargo.lock").is_file() {
                        return Some(dir);
                    }
                    if !dir.pop() {
                        return None;
                    }
                }
            })
            .unwrap_or_else(|| PathBuf::from("."));
        dir.join(format!("BENCH_{}.json", self.name))
    }

    /// Writes `BENCH_<name>.json`, returning the path written.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.path();
        let mut file = std::fs::File::create(&path)?;
        file.write_all(self.to_json().as_bytes())?;
        Ok(path)
    }

    /// Parses a report previously rendered by [`BenchReport::to_json`]
    /// (the schema in the module docs; field order within a record does
    /// not matter). The workspace builds offline with no serde, so this
    /// rides the shared [`expred_stats::json`] parser — `bench-diff` uses
    /// it to compare artifacts across PRs. The schema stays strict:
    /// unknown fields are rejected, so a typo in a hand-edited artifact
    /// fails loudly instead of vanishing.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(json).map_err(|e| e.to_string())?;
        let mut name: Option<String> = None;
        let mut records: Option<Vec<BenchRecord>> = None;
        for key in doc.keys() {
            let value = doc.get(key).expect("listed key is present");
            match key {
                "bench" => {
                    name = Some(
                        value
                            .as_str()
                            .ok_or("\"bench\" must be a string")?
                            .to_owned(),
                    )
                }
                "results" => {
                    let rows = value.as_array().ok_or("\"results\" must be an array")?;
                    records = Some(
                        rows.iter()
                            .map(record_from_json)
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                other => return Err(format!("unexpected top-level field {other:?}")),
            }
        }
        if !matches!(doc, JsonValue::Object(_)) {
            return Err("a report must be a JSON object".to_owned());
        }
        Ok(Self {
            name: name.ok_or("missing \"bench\" field")?,
            records: records.ok_or("missing \"results\" field")?,
        })
    }
}

/// Extracts one measurement row, strictly: all four fields required,
/// unknown fields rejected, `null` measurements surfaced as NaN.
fn record_from_json(row: &JsonValue) -> Result<BenchRecord, String> {
    if !matches!(row, JsonValue::Object(_)) {
        return Err("each result row must be a JSON object".to_owned());
    }
    let (mut scenario, mut backend) = (None, None);
    let (mut ns_per_probe, mut speedup) = (None, None);
    let number_or_null = |value: &JsonValue, field: &str| match value {
        JsonValue::Null => Ok(f64::NAN),
        other => other
            .as_f64()
            .ok_or(format!("{field:?} must be a number or null")),
    };
    for key in row.keys() {
        let value = row.get(key).expect("listed key is present");
        match key {
            "scenario" => {
                scenario = Some(
                    value
                        .as_str()
                        .ok_or("\"scenario\" must be a string")?
                        .to_owned(),
                )
            }
            "backend" => {
                backend = Some(
                    value
                        .as_str()
                        .ok_or("\"backend\" must be a string")?
                        .to_owned(),
                )
            }
            "ns_per_probe" => ns_per_probe = Some(number_or_null(value, "ns_per_probe")?),
            "speedup_vs_baseline" => speedup = Some(number_or_null(value, "speedup_vs_baseline")?),
            other => return Err(format!("unexpected record field {other:?}")),
        }
    }
    Ok(BenchRecord {
        scenario: scenario.ok_or("record missing \"scenario\"")?,
        backend: backend.ok_or("record missing \"backend\"")?,
        ns_per_probe: ns_per_probe.ok_or("record missing \"ns_per_probe\"")?,
        speedup_vs_baseline: speedup.ok_or("record missing \"speedup_vs_baseline\"")?,
    })
}

/// Mean wall-clock nanoseconds per unit of work: runs `f` once as a
/// warm-up, then `reps` timed repetitions over `units` logical units
/// each. The shared measurement loop behind the `BENCH_<name>.json`
/// emitters.
pub fn measure_ns_per_unit(units: u64, reps: usize, mut f: impl FnMut()) -> f64 {
    assert!(units > 0 && reps > 0, "measure over at least one unit/rep");
    f();
    let begin = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    begin.elapsed().as_nanos() as f64 / (reps as u64 * units) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let mut report = BenchReport::new("demo");
        report.record("batch_8_udf_1us", "sequential", 1000.0, 1.0);
        report.record("batch_8_udf_1us", "worker_pool", 250.0, 4.0);
        let json = report.to_json();
        assert!(json.contains("\"bench\": \"demo\""));
        assert!(json.contains("\"scenario\": \"batch_8_udf_1us\""));
        assert!(json.contains("\"ns_per_probe\": 250.0"));
        assert!(json.contains("\"speedup_vs_baseline\": 4.0"));
        assert_eq!(json.matches("\"backend\"").count(), 2);
        // Exactly one trailing-comma-free closing per record list.
        assert!(json.trim_end().ends_with('}'));
        assert_eq!(report.records().len(), 2);
    }

    #[test]
    fn non_finite_values_serialize_as_null() {
        let mut report = BenchReport::new("demo");
        report.record("s", "b", f64::NAN, f64::INFINITY);
        let json = report.to_json();
        assert!(json.contains("\"ns_per_probe\": null"));
        assert!(json.contains("\"speedup_vs_baseline\": null"));
    }

    #[test]
    fn names_are_escaped() {
        let mut report = BenchReport::new("we\"ird");
        report.record("a\\b", "c\nd", 1.0, 1.0);
        let json = report.to_json();
        assert!(json.contains("we\\\"ird"));
        assert!(json.contains("a\\\\b"));
        assert!(json.contains("c\\u000ad"));
    }

    #[test]
    fn path_lands_in_the_workspace_root() {
        let report = BenchReport::new("demo");
        let path = report.path();
        assert!(path.ends_with("BENCH_demo.json"));
    }

    #[test]
    fn json_round_trips() {
        let mut report = BenchReport::new("we\"ird");
        report.record("batch_8_udf_1us", "sequential", 1000.5, 1.0);
        report.record("a\\b", "c\nd", 250.0, 4.0);
        report.record("failed", "b", f64::NAN, f64::INFINITY);
        let parsed = BenchReport::from_json(&report.to_json()).expect("own output parses");
        assert_eq!(parsed.name, report.name);
        assert_eq!(parsed.records().len(), 3);
        assert_eq!(parsed.records()[0], report.records()[0]);
        assert_eq!(parsed.records()[1].scenario, "a\\b");
        assert_eq!(parsed.records()[1].backend, "c\nd");
        // null (failed measurement) round-trips as NaN.
        assert!(parsed.records()[2].ns_per_probe.is_nan());
        assert!(parsed.records()[2].speedup_vs_baseline.is_nan());
    }

    #[test]
    fn parser_rejects_malformed_reports() {
        for bad in [
            "",
            "{",
            "{\"bench\": \"x\"}",
            "{\"results\": []}",
            "{\"bench\": \"x\", \"results\": [{\"scenario\": \"s\"}]}",
            "{\"bench\": \"x\", \"results\": [{\"scenario\": \"s\", \"backend\": \"b\", \
             \"ns_per_probe\": oops, \"speedup_vs_baseline\": 1.0}]}",
        ] {
            assert!(BenchReport::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn empty_results_parse() {
        let report = BenchReport::new("empty");
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert!(parsed.records().is_empty());
    }

    #[test]
    fn measure_counts_units() {
        let mut calls = 0u64;
        let ns = measure_ns_per_unit(10, 3, || calls += 1);
        assert_eq!(calls, 4, "one warm-up + three timed reps");
        assert!(ns >= 0.0);
    }
}
