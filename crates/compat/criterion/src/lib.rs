//! A minimal, dependency-free stand-in for the [`criterion`] benchmarking
//! crate.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be vendored. This crate implements the subset of its
//! API used by the workspace benches — `criterion_group!`/`criterion_main!`,
//! benchmark groups, `bench_function`/`bench_with_input`, `Throughput`,
//! `BenchmarkId`, and `Bencher::iter` — with wall-clock measurement and a
//! plain-text report (mean, min, max per benchmark, plus throughput).
//!
//! Statistical machinery (outlier rejection, bootstrap confidence
//! intervals, HTML reports) is intentionally absent. Measurement knobs:
//!
//! * `sample_size(n)` — number of timed samples (default 10);
//! * the `CRITERION_MAX_SECONDS` environment variable caps the time spent
//!   per benchmark (default 5 seconds), so debug-profile runs stay fast.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How many logical units one iteration processes; folded into the report
/// as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (rows, tuples, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// A benchmark's display identity.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl<S: Into<String>> From<S> for BenchmarkId {
    fn from(s: S) -> Self {
        Self { text: s.into() }
    }
}

/// Drives closures under measurement; handed to the bench body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    max_total: Duration,
}

impl Bencher {
    /// Times `f`, collecting up to `sample_size` samples within the time
    /// budget. Each sample is one call; outputs pass through `black_box`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also primes lazy state the first call builds).
        black_box(f());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if started.elapsed() > self.max_total {
                break;
            }
        }
    }
}

fn max_seconds() -> f64 {
    std::env::var("CRITERION_MAX_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0)
}

fn report(id: &str, group: Option<&str>, samples: &[Duration], throughput: Option<Throughput>) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_owned(),
    };
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    let secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = secs.iter().cloned().fold(0.0f64, f64::max);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean)
        }
        Some(Throughput::Bytes(n)) if mean > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean)
        }
        _ => String::new(),
    };
    println!(
        "{name:<48} time: [{} {} {}]{rate}  ({} samples)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
            max_total: Duration::from_secs_f64(max_seconds()),
        };
        f(&mut b);
        report(&id.text, None, &b.samples, None);
        self
    }
}

/// A group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim's budget comes from
    /// `CRITERION_MAX_SECONDS` instead.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            max_total: Duration::from_secs_f64(max_seconds()),
        };
        f(&mut b);
        report(&id.text, Some(&self.name), &b.samples, self.throughput);
        self
    }

    /// Runs one benchmark with an explicit input handle.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (reporting is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass harness flags; a bench binary
            // invoked with `--test` must not run the full measurement.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).text, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").text, "x");
        assert_eq!(BenchmarkId::from("plain").text, "plain");
    }

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("CRITERION_MAX_SECONDS", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(4)).sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 2 + 2));
        group.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(3.2e-9).ends_with("ns"));
        assert!(fmt_time(3.2e-6).ends_with("µs"));
        assert!(fmt_time(3.2e-3).ends_with("ms"));
        assert!(fmt_time(3.2).ends_with("s"));
    }
}
