//! A minimal, dependency-free stand-in for the [`proptest`] crate.
//!
//! The build environment for this workspace has no network access, so the
//! real crates.io `proptest` cannot be vendored. This crate implements the
//! subset of its API that the workspace's property tests use, with the
//! same names and shapes:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `pattern in
//!   strategy` arguments, and `prop_assert!`/`prop_assert_eq!`;
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples, `any::<T>()`, [`collection::vec`], and a small
//!   character-class subset of regex string strategies;
//! * deterministic case generation (seeded per test name and case index,
//!   overridable via the `PROPTEST_CASES` environment variable).
//!
//! Differences from the real crate: no shrinking, no persisted failure
//! regressions, and a fixed (rather than adaptively grown) case schedule.
//! Failing cases report the test name and case index, which — together
//! with the deterministic seeding — is enough to reproduce locally.
//!
//! [`proptest`]: https://docs.rs/proptest

use std::fmt;

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given rendered message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-case outcome used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    //! Test configuration and the deterministic per-case RNG.

    /// Mirror of `proptest::test_runner::Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Effective case count: the config, unless `PROPTEST_CASES` overrides.
    pub fn case_count(config: &Config) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases)
    }

    /// SplitMix64-based generator, seeded from the test name and case
    /// index so every property sees a distinct but reproducible stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator for one `(test, case)` pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
            for b in test_name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            seed = seed.wrapping_add((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = Self { state: seed };
            rng.next_u64(); // decouple from the raw hash
            rng
        }

        /// Next raw 64-bit output (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, 1]` (both endpoints reachable).
        pub fn unit_f64_inclusive(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }

        /// Uniform integer in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            // Multiply-shift; bias is immaterial for test generation.
            (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its built-in implementations.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real proptest `Strategy`, generation is direct (no value
    /// trees, no shrinking): `generate` draws one value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + (hi - lo) * rng.unit_f64_inclusive()
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Types with a canonical full-domain strategy (see [`any`]).
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-domain strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// String strategy from a regex-like pattern.
    ///
    /// Supports the character-class-with-repetition subset this workspace
    /// uses: `[a-z]{min,max}` (multiple ranges and literal characters
    /// inside the class are fine). Anything fancier panics with a pointer
    /// to this implementation.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_pattern(self);
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    fn parse_class_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
        let unsupported = || -> ! {
            panic!(
                "the offline proptest stand-in only supports `[class]{{min,max}}` \
                 string patterns, got {pattern:?}"
            )
        };
        let rest = pattern.strip_prefix('[').unwrap_or_else(|| unsupported());
        let (class, rest) = rest.split_once(']').unwrap_or_else(|| unsupported());
        let mut alphabet = Vec::new();
        let chars: Vec<char> = class.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if i + 2 < chars.len() && chars[i + 1] == '-' {
                let (lo, hi) = (chars[i], chars[i + 2]);
                assert!(lo <= hi, "inverted class range in {pattern:?}");
                alphabet.extend(lo..=hi);
                i += 3;
            } else {
                alphabet.push(chars[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            unsupported();
        }
        let (min, max) = if rest.is_empty() {
            (1, 1)
        } else {
            let body = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| unsupported());
            match body.split_once(',') {
                Some((a, b)) => (
                    a.parse().unwrap_or_else(|_| unsupported()),
                    b.parse().unwrap_or_else(|_| unsupported()),
                ),
                None => {
                    let n = body.parse().unwrap_or_else(|_| unsupported());
                    (n, n)
                }
            }
        };
        assert!(min <= max, "inverted repetition in {pattern:?}");
        (alphabet, min, max)
    }
}

pub mod collection {
    //! `Vec` strategies, mirroring `proptest::collection`.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Module-path mirror of the real crate's `prop` re-export hierarchy
/// (`prop::collection::vec` and friends).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! Mirrors `proptest::prelude`: everything a test file needs.

    pub use crate::collection;
    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{TestCaseError, TestCaseResult};
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (rather than panicking) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// The property-test entry macro; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(
            <$crate::test_runner::Config as ::std::default::Default>::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; ) => {};
    ($cfg:expr; #[test] fn $name:ident($($args:tt)*) $body:block $($rest:tt)*) => {
        $crate::__proptest_one!($cfg; $name; ($($args)*); $body);
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    ($cfg:expr; $name:ident; ($($arg:pat in $strat:expr),* $(,)?); $body:block) => {
        #[test]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let cases = $crate::test_runner::case_count(&config);
            for case in 0..cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&$strat, &mut __proptest_rng);
                )*
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        cases,
                        e
                    );
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_parses() {
        let mut rng = crate::test_runner::TestRng::for_case("string_pattern", 0);
        for _ in 0..100 {
            let s = Strategy::generate(&"[ -~]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.bytes().all(|b| (b' '..=b'~').contains(&b)));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::for_case("x", 3);
        let mut b = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            let _drawn: bool = b;
        }

        #[test]
        fn tuples_vecs_and_maps((n, v) in (1u64..5, prop::collection::vec(0i64..4, 0..6))) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(v.len() < 6);
            prop_assert_eq!(v.iter().filter(|&&x| x > 3).count(), 0);
        }

        #[test]
        fn prop_map_composes(total in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(total < 20, "total {} out of range", total);
        }
    }
}
