//! Crash-consistency property suite: whatever a crash (or bit rot)
//! leaves on disk, `PersistStore::open` must come back up without a
//! panic, and every record it recovers must be one the store actually
//! wrote — a damaged tail is *dropped*, never invented or trusted.

use expred_persist::{PersistConfig, PersistKey, PersistStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const KEY: PersistKey = PersistKey {
    udf: 0x5eed,
    table: 0x7ab1e,
    version: 0xfeed,
};

fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "expred-crash-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic answer/timestamp written for row `i`, so recovery
/// can be audited without keeping a side copy of the data.
fn expected(i: u32) -> (bool, u64) {
    (i.is_multiple_of(3), 1_000 + i as u64)
}

/// Writes `rows` row-answers into a WAL-only store (auto-compaction
/// off, so everything stays in the log) and returns the WAL's path.
fn write_wal(dir: &PathBuf, rows: u32) -> PathBuf {
    let store =
        PersistStore::open(PersistConfig::new(dir).with_compact_after(0)).expect("open store");
    for i in 0..rows {
        let (answer, ts) = expected(i);
        store.append_row(KEY, i, answer, ts);
    }
    store.sync().expect("sync the WAL");
    drop(store);
    let wal = std::fs::read_dir(dir)
        .expect("read store dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .max()
        .expect("a WAL file exists");
    assert!(
        std::fs::metadata(&wal).expect("stat WAL").len() > 0,
        "the WAL must hold the appended rows"
    );
    wal
}

/// Reopens the store and checks the recovery contract: no panic, and
/// every recovered row is a genuine write (right answer, right stamp).
/// Returns how many rows came back.
fn check_recovery(dir: &PathBuf, rows: u32) -> u32 {
    let store = PersistStore::open(PersistConfig::new(dir)).expect("recovery must not fail");
    let recovered = store.rows(KEY).unwrap_or_default();
    for &(row, answer, ts) in &recovered {
        assert!(row < rows, "recovered a row that was never written");
        let (want_answer, want_ts) = expected(row);
        assert_eq!(answer, want_answer, "row {row}: recovered a wrong answer");
        assert_eq!(ts, want_ts, "row {row}: recovered a wrong timestamp");
    }
    let n = recovered.len() as u32;
    // A reopened store must also be writable: damage to the old tail
    // cannot poison new appends.
    store.append_row(KEY, rows + 7, true, 9_999);
    store.sync().expect("post-recovery writes flush");
    assert!(store
        .rows(KEY)
        .expect("namespace lives")
        .contains(&(rows + 7, true, 9_999)));
    n
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

    // Property: truncating the WAL at *any* byte offset — a crash
    // mid-write — recovers a valid prefix of the log: every surviving
    // record is genuine, and a cut inside the header loses (only) the
    // whole file.
    #[test]
    fn truncation_at_any_offset_recovers_a_valid_prefix(
        rows in 1u32..120,
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = unique_dir("truncate");
        let wal = write_wal(&dir, rows);
        let len = std::fs::metadata(&wal).expect("stat").len();
        let cut = (len as f64 * cut_fraction) as u64;
        let bytes = std::fs::read(&wal).expect("read WAL");
        std::fs::write(&wal, &bytes[..cut as usize]).expect("truncate WAL");

        let recovered = check_recovery(&dir, rows);
        assert!(recovered <= rows, "recovery invented records");
        if cut == len {
            assert_eq!(recovered, rows, "an untouched log recovers fully");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Property: flipping any single byte — disk corruption — never
    // panics recovery and never yields a record that was not written.
    // (The CRC catches the flip; everything from the damaged frame on
    // is discarded.)
    #[test]
    fn a_flipped_byte_is_caught_not_served(
        rows in 1u32..120,
        flip_fraction in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let dir = unique_dir("flip");
        let wal = write_wal(&dir, rows);
        let mut bytes = std::fs::read(&wal).expect("read WAL");
        let at = ((bytes.len() - 1) as f64 * flip_fraction) as usize;
        bytes[at] ^= xor;
        std::fs::write(&wal, &bytes).expect("write damaged WAL");

        let recovered = check_recovery(&dir, rows);
        assert!(recovered <= rows);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Property: garbage appended past a clean shutdown — a torn final
    // write — is skipped; every genuine record still recovers.
    #[test]
    fn appended_garbage_does_not_mask_the_valid_prefix(
        rows in 1u32..120,
        garbage in proptest::collection::vec(0u8..=255, 1..64),
    ) {
        let dir = unique_dir("garbage");
        let wal = write_wal(&dir, rows);
        let mut bytes = std::fs::read(&wal).expect("read WAL");
        bytes.extend_from_slice(&garbage);
        std::fs::write(&wal, &bytes).expect("write extended WAL");

        let recovered = check_recovery(&dir, rows);
        assert_eq!(
            recovered, rows,
            "a torn tail must not cost any completed record"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn a_zero_length_and_a_missing_wal_both_open_empty() {
    let dir = unique_dir("empty");
    let wal = write_wal(&dir, 10);
    std::fs::write(&wal, b"").expect("truncate to zero");
    let store = PersistStore::open(PersistConfig::new(&dir)).expect("open over empty WAL");
    assert!(store.rows(KEY).unwrap_or_default().is_empty());
    drop(store);

    let fresh = unique_dir("missing");
    let store = PersistStore::open(PersistConfig::new(&fresh)).expect("open fresh dir");
    assert!(store.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&fresh);
}
