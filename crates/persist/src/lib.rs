//! `expred-persist` — a std-only durable store for the engine's reuse
//! tiers: every answer the session ever paid `o_e` for can outlive the
//! process that bought it.
//!
//! The paper's entire win is never paying for the same probe twice;
//! PRs 2–9 stretched that reuse across queries, threads, and tenants,
//! but every tier still died with the process. This crate adds the
//! missing axis — time across restarts — with a deliberately boring,
//! auditable design:
//!
//! * **Format** ([`mod@format`]): magic + format version per file, one
//!   CRC-checked length-prefixed frame per record. Corrupt or truncated
//!   tails are *skipped, never trusted*: recovery keeps the longest
//!   valid prefix and never panics on file contents.
//! * **WAL** ([`store`]): fresh `(udf, table, version, row) → bool`
//!   answers append to a write-ahead log through a bounded queue drained
//!   by a background flusher thread with a batched-fsync policy. The
//!   queue sheds its *oldest* pending records under backpressure, so
//!   persistence can never stall the hot path — shedding trades
//!   crash-window durability only, never correctness, because the
//!   in-memory index (the snapshot source) is updated synchronously and
//!   the next compaction re-captures anything the WAL dropped.
//! * **Snapshots**: the WAL periodically compacts into a
//!   generation-numbered snapshot file written as temp-then-rename, so
//!   a crash at any byte leaves either the old generation or the new
//!   one, never a half state.
//! * **Rehydration**: namespaces are keyed by `(udf fingerprint, schema
//!   fingerprint, content version)` — all process-independent — and the
//!   engine checks versions on load, so a persisted namespace whose
//!   table no longer matches is ignored, not served.
//!
//! The store itself is engine-agnostic: it maps [`PersistKey`]s to row
//! answers and selectivity counters. `expred-core` wires it into
//! `QueryEngine::with_persistence`, and `expred-serve` gives every
//! tenant a directory under `--data-dir` for warm restarts.

pub mod format;
pub mod store;

pub use format::{PersistKey, Record};
pub use store::{FsyncPolicy, PersistConfig, PersistError, PersistStats, PersistStore};
