//! [`PersistStore`]: the durable store — WAL, snapshots, recovery.
//!
//! # Write path
//!
//! [`PersistStore::append_row`] updates the in-memory index
//! *synchronously* (first write per `(namespace, row)` wins — answers
//! are deterministic per table version, so a re-offer of the same row is
//! a no-op that also keeps the original TTL timestamp) and enqueues a
//! WAL record on a bounded queue. A background flusher thread drains the
//! queue in batches, appends frames to the current WAL file, and fsyncs
//! per [`FsyncPolicy`]. When the queue is full the *oldest* pending
//! record is shed: the hot path never blocks on disk. Shedding trades
//! durability-until-compaction only — the index still holds the answer,
//! and the next *snapshot compaction* re-captures it. Nothing else
//! does: [`PersistStore::sync`] and a graceful drop flush the pending
//! *queue*, which no longer contains the shed record, and a re-offer of
//! the same row deduplicates against the index without re-enqueuing.
//! Callers that must not lose shed records across a restart therefore
//! compact before exiting (the engine's `flush_persistence` does so
//! whenever `shed > 0`). Losing one anyway is a re-buy, never a wrong
//! answer.
//!
//! # Files and crash consistency
//!
//! The directory holds generation-numbered pairs: `snapshot-<g>` (the
//! whole index at the moment generation `g` began) and `wal-<g>`
//! (appends since). Compaction writes `snapshot-<g+1>` as a temp file,
//! fsyncs, renames (atomic on POSIX), creates `wal-<g+1>`, and only then
//! deletes generation `g`'s files — a crash at any byte boundary leaves
//! either a complete old generation or a complete new one. Recovery
//! picks the highest generation with a readable snapshot header, replays
//! the snapshot, then replays `wal-<g>` on top, stopping at the first
//! corrupt or truncated frame and truncating the file back to the valid
//! prefix so later appends never land after garbage.

use crate::format::{
    check_header, encode_frame, file_header, replay_frames, PersistKey, Record, HEADER_LEN,
};
use std::collections::{HashMap, VecDeque};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default bound on queued-but-unflushed WAL records.
pub const DEFAULT_QUEUE_CAPACITY: usize = 8_192;

/// Default WAL record count that triggers background compaction.
pub const DEFAULT_COMPACT_AFTER: u64 = 65_536;

/// When the flusher fsyncs the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Once per drained batch (the default): one fsync amortizes over
    /// every record the queue accumulated while the previous batch was
    /// writing.
    EveryBatch,
    /// At most once per `n` flushed records — bounds fsync traffic under
    /// sustained load at the price of a wider crash window.
    EveryRecords(u64),
    /// Never (benchmarks and tests; the OS still writes back
    /// eventually). [`PersistStore::sync`] fsyncs regardless.
    Never,
}

/// Configuration for [`PersistStore::open`].
#[derive(Debug, Clone)]
pub struct PersistConfig {
    /// Directory holding this store's snapshot and WAL files. Created
    /// (with parents) if absent.
    pub dir: PathBuf,
    /// Bound on queued-but-unflushed WAL records; beyond it the oldest
    /// pending record is shed (see the module docs).
    pub queue_capacity: usize,
    /// Batched-fsync policy for the flusher thread.
    pub fsync: FsyncPolicy,
    /// WAL records between automatic compactions; 0 disables automatic
    /// compaction (explicit [`PersistStore::compact`] still works).
    pub compact_after: u64,
}

impl PersistConfig {
    /// Defaults rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            fsync: FsyncPolicy::EveryBatch,
            compact_after: DEFAULT_COMPACT_AFTER,
        }
    }

    /// Replaces the queue bound (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Replaces the fsync policy.
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Replaces the auto-compaction threshold (0 disables).
    pub fn with_compact_after(mut self, records: u64) -> Self {
        self.compact_after = records;
        self
    }
}

/// Why the store could not be opened or flushed.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O operation failed; `context` names the file and operation.
    Io {
        /// What the store was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { context, source } => write!(f, "persist: {context}: {source}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io { source, .. } => Some(source),
        }
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> PersistError {
    let context = context.into();
    move |source| PersistError::Io { context, source }
}

/// Counters describing the store's life so far (monotone; survive
/// compaction, reset by reopen).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Row answers accepted into the index (first write per row).
    pub appended: u64,
    /// Queue records dropped by backpressure shedding.
    pub shed: u64,
    /// Records written to the WAL by the flusher.
    pub flushed: u64,
    /// WAL fsync calls.
    pub fsyncs: u64,
    /// Snapshot compactions completed.
    pub compactions: u64,
    /// Row answers recovered from disk at open.
    pub recovered_rows: u64,
    /// Namespaces recovered from disk at open.
    pub recovered_namespaces: u64,
    /// Bytes of corrupt or truncated tail discarded at open.
    pub tail_bytes_discarded: u64,
}

impl PersistStats {
    /// The snapshot as named counters, in stable declaration order (the
    /// same serialization-ready shape every stats struct in the
    /// workspace exposes).
    pub fn fields(&self) -> [(&'static str, u64); 8] {
        [
            ("appended", self.appended),
            ("shed", self.shed),
            ("flushed", self.flushed),
            ("fsyncs", self.fsyncs),
            ("compactions", self.compactions),
            ("recovered_rows", self.recovered_rows),
            ("recovered_namespaces", self.recovered_namespaces),
            ("tail_bytes_discarded", self.tail_bytes_discarded),
        ]
    }
}

#[derive(Debug, Default)]
struct AtomicPersistStats {
    appended: AtomicU64,
    shed: AtomicU64,
    flushed: AtomicU64,
    fsyncs: AtomicU64,
    compactions: AtomicU64,
    recovered_rows: AtomicU64,
    recovered_namespaces: AtomicU64,
    tail_bytes_discarded: AtomicU64,
}

impl AtomicPersistStats {
    fn snapshot(&self) -> PersistStats {
        PersistStats {
            appended: self.appended.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            flushed: self.flushed.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            recovered_rows: self.recovered_rows.load(Ordering::Relaxed),
            recovered_namespaces: self.recovered_namespaces.load(Ordering::Relaxed),
            tail_bytes_discarded: self.tail_bytes_discarded.load(Ordering::Relaxed),
        }
    }
}

/// One namespace's recovered/accepted rows: `row -> (answer, ts_nanos)`.
type NamespaceRows = HashMap<u32, (bool, u64)>;

/// The authoritative in-memory image of the store. The WAL and snapshots
/// only exist to rebuild this after a restart.
#[derive(Debug, Default)]
struct Index {
    rows: HashMap<PersistKey, NamespaceRows>,
    selectivity: HashMap<PersistKey, (u64, u64)>,
}

impl Index {
    fn apply(&mut self, record: Record) -> u64 {
        match record {
            Record::Row {
                key,
                row,
                answer,
                ts_nanos,
            } => {
                self.rows
                    .entry(key)
                    .or_default()
                    .entry(row)
                    .or_insert((answer, ts_nanos));
                1
            }
            Record::RowBatch { key, rows } => {
                let ns = self.rows.entry(key).or_default();
                let count = rows.len() as u64;
                for (row, answer, ts_nanos) in rows {
                    ns.entry(row).or_insert((answer, ts_nanos));
                }
                count
            }
            Record::TombstoneAll => {
                self.rows.clear();
                self.selectivity.clear();
                0
            }
            Record::Selectivity { key, passes, total } => {
                self.selectivity.insert(key, (passes, total));
                0
            }
        }
    }

    fn to_records(&self) -> Vec<Record> {
        let mut records: Vec<Record> = Vec::with_capacity(self.rows.len() + self.selectivity.len());
        let mut keys: Vec<&PersistKey> = self.rows.keys().collect();
        keys.sort();
        for key in keys {
            let ns = &self.rows[key];
            let mut rows: Vec<(u32, bool, u64)> =
                ns.iter().map(|(&r, &(a, t))| (r, a, t)).collect();
            rows.sort_unstable_by_key(|&(r, _, _)| r);
            records.push(Record::RowBatch { key: *key, rows });
        }
        let mut sel: Vec<(&PersistKey, &(u64, u64))> = self.selectivity.iter().collect();
        sel.sort();
        for (key, &(passes, total)) in sel {
            records.push(Record::Selectivity {
                key: *key,
                passes,
                total,
            });
        }
        records
    }
}

/// What the hot path hands the flusher thread.
#[derive(Debug)]
struct FlushQueue {
    pending: VecDeque<Record>,
    /// Monotone ticket the flusher has fully flushed up to (every record
    /// enqueued before `flushed_ticket` was issued is on disk).
    enqueued_ticket: u64,
    flushed_ticket: u64,
    /// Compaction request/completion tickets ([`PersistStore::compact`]).
    /// Compaction runs *only* on the flusher thread, between batches:
    /// with a single WAL writer, no record can land in a retired WAL
    /// after the snapshot that supersedes it was frozen — which is what
    /// makes a `sync()` acknowledgment durable across compaction.
    compact_requested: u64,
    compact_done: u64,
    /// Tickets `<= compact_failed_through` were answered by a compaction
    /// attempt that returned an error (no snapshot was written);
    /// `compact_error` describes the most recent failure. Waiters use
    /// this to turn a completed-but-failed compaction into an `Err`
    /// instead of silently reporting durability that never happened.
    compact_failed_through: u64,
    compact_error: Option<String>,
    shutdown: bool,
}

/// Shared state between the store handle and the flusher thread.
#[derive(Debug)]
struct Shared {
    index: Mutex<Index>,
    queue: Mutex<FlushQueue>,
    /// Wakes the flusher (new records, sync request, shutdown).
    work: Condvar,
    /// Wakes `sync` callers (flushed ticket advanced).
    flushed: Condvar,
    stats: AtomicPersistStats,
    config: PersistConfig,
}

/// The durable store. One per engine session (or per tenant); the handle
/// is cheap to share behind an `Arc`.
#[derive(Debug)]
pub struct PersistStore {
    shared: Arc<Shared>,
    flusher: Option<JoinHandle<()>>,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:06}"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:06}"))
}

/// Parses `name` as `<prefix>-<generation>`.
fn parse_generation(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)
        .and_then(|rest| rest.strip_prefix('-'))
        .and_then(|digits| digits.parse().ok())
}

/// Reads a persist file's frames (tolerating a corrupt tail), returning
/// `(records, valid_prefix_len, file_len)`. A missing file reads as
/// empty; a file with a foreign or damaged header contributes nothing
/// (its whole body is "tail").
fn read_frames(path: &Path) -> (Vec<Record>, u64, u64) {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            if f.read_to_end(&mut bytes).is_err() {
                return (Vec::new(), 0, 0);
            }
        }
        Err(_) => return (Vec::new(), 0, 0),
    }
    let file_len = bytes.len() as u64;
    if !check_header(&bytes) {
        return (Vec::new(), 0, file_len);
    }
    let mut records = Vec::new();
    let valid = replay_frames(&bytes[HEADER_LEN..], |r| records.push(r));
    (records, (HEADER_LEN + valid) as u64, file_len)
}

/// Creates `path` containing just the file header, fsyncing file and
/// directory so the file exists durably.
fn create_with_header(path: &Path) -> Result<File, PersistError> {
    let mut f = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(path)
        .map_err(io_err(format!("create {}", path.display())))?;
    f.write_all(&file_header())
        .map_err(io_err(format!("write header {}", path.display())))?;
    f.sync_all()
        .map_err(io_err(format!("sync {}", path.display())))?;
    sync_dir(path.parent().unwrap_or(Path::new(".")));
    Ok(f)
}

/// Best-effort directory fsync (makes renames/creates durable; some
/// filesystems reject directory fsync — recovery tolerates that).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl PersistStore {
    /// Opens (or creates) the store rooted at `config.dir`, recovering
    /// the index from the newest intact snapshot generation plus its
    /// WAL's valid prefix. Never fails on *file contents* — corruption
    /// costs records, not the open; only real I/O errors (permissions,
    /// disk full) surface as [`PersistError`].
    pub fn open(config: PersistConfig) -> Result<Self, PersistError> {
        fs::create_dir_all(&config.dir)
            .map_err(io_err(format!("create dir {}", config.dir.display())))?;

        // Newest generation with a readable snapshot header wins; a
        // brand-new directory starts at generation 0 with no snapshot.
        let mut generations: Vec<u64> = Vec::new();
        let entries = fs::read_dir(&config.dir)
            .map_err(io_err(format!("read dir {}", config.dir.display())))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(g) = parse_generation(&name, "snapshot") {
                generations.push(g);
            } else if let Some(g) = parse_generation(&name, "wal") {
                generations.push(g);
            }
        }
        generations.sort_unstable();
        generations.dedup();

        let stats = AtomicPersistStats::default();
        let mut index = Index::default();
        let mut generation = 0;
        // Walk newest-first: the first generation whose snapshot replays
        // (or that never had one — WAL-only generation 0) is the state.
        for &g in generations.iter().rev() {
            let snap = snapshot_path(&config.dir, g);
            let (snap_records, snap_valid, snap_len) = read_frames(&snap);
            if snap_len > 0 && snap_valid == 0 && g > 0 {
                // A snapshot file exists but its header is unreadable —
                // not one of ours (snapshots are written whole via temp +
                // rename, so even an *empty* valid snapshot replays its
                // header). Fall back to the previous generation.
                continue;
            }
            for record in snap_records {
                let rows = index.apply(record);
                stats.recovered_rows.fetch_add(rows, Ordering::Relaxed);
            }
            if snap_len > 0 {
                let kept = snap_valid.max(HEADER_LEN as u64).min(snap_len);
                stats
                    .tail_bytes_discarded
                    .fetch_add(snap_len - kept, Ordering::Relaxed);
            }
            let wal = wal_path(&config.dir, g);
            let (wal_records, wal_valid, wal_len) = read_frames(&wal);
            if snap_len == 0 && wal_len > 0 && wal_valid == 0 && g > 0 {
                // A snapshot-less generation whose WAL header is foreign:
                // not ours either (we create WALs header-first, fsynced).
                // Keep looking for a real generation.
                continue;
            }
            for record in wal_records {
                let rows = index.apply(record);
                stats.recovered_rows.fetch_add(rows, Ordering::Relaxed);
            }
            if wal_len > wal_valid {
                // Truncate the corrupt tail so future appends follow the
                // valid prefix instead of hiding behind garbage.
                stats
                    .tail_bytes_discarded
                    .fetch_add(wal_len - wal_valid, Ordering::Relaxed);
                if wal_valid >= HEADER_LEN as u64 {
                    if let Ok(f) = OpenOptions::new().write(true).open(&wal) {
                        let _ = f.set_len(wal_valid);
                        let _ = f.sync_all();
                    }
                } else {
                    // Header itself unreadable: start the WAL over.
                    let _ = create_with_header(&wal)?;
                }
            }
            generation = g;
            break;
        }
        stats
            .recovered_namespaces
            .store(index.rows.len() as u64, Ordering::Relaxed);

        // Ensure the current generation's WAL exists and is appendable.
        let wal = wal_path(&config.dir, generation);
        let wal_file = match OpenOptions::new().append(true).open(&wal) {
            Ok(f) => f,
            Err(_) => create_with_header(&wal)?,
        };

        // Older generations are dead weight (crash leftovers from a
        // partially completed compaction) — clean them up.
        for &g in &generations {
            if g < generation {
                let _ = fs::remove_file(snapshot_path(&config.dir, g));
                let _ = fs::remove_file(wal_path(&config.dir, g));
            }
        }

        let shared = Arc::new(Shared {
            index: Mutex::new(index),
            queue: Mutex::new(FlushQueue {
                pending: VecDeque::new(),
                enqueued_ticket: 0,
                flushed_ticket: 0,
                compact_requested: 0,
                compact_done: 0,
                compact_failed_through: 0,
                compact_error: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            flushed: Condvar::new(),
            stats,
            config,
        });
        let flusher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("persist-flusher".into())
                .spawn(move || flusher_loop(shared, wal_file, generation))
                .map_err(io_err("spawn flusher thread"))?
        };
        Ok(Self {
            shared,
            flusher: Some(flusher),
        })
    }

    /// Accepts one fresh row answer. First write per `(key, row)` wins
    /// (deterministic answers make a re-offer a no-op); a new row updates
    /// the index synchronously and enqueues a WAL record, shedding the
    /// oldest pending record if the queue is full. Never blocks on disk.
    pub fn append_row(&self, key: PersistKey, row: u32, answer: bool, ts_nanos: u64) {
        {
            let mut index = self.shared.index.lock().unwrap_or_else(|e| e.into_inner());
            let ns = index.rows.entry(key).or_default();
            match ns.entry(row) {
                std::collections::hash_map::Entry::Occupied(existing) => {
                    debug_assert_eq!(
                        existing.get().0,
                        answer,
                        "answer flip for persisted row {row} — nondeterministic UDF?"
                    );
                    return;
                }
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert((answer, ts_nanos));
                }
            }
        }
        self.shared.stats.appended.fetch_add(1, Ordering::Relaxed);
        self.enqueue(Record::Row {
            key,
            row,
            answer,
            ts_nanos,
        });
    }

    /// Records absolute selectivity counters for `key` (overwrite
    /// semantics — replay keeps the last record, so flushing live
    /// counters repeatedly never double-counts).
    pub fn record_selectivity(&self, key: PersistKey, passes: u64, total: u64) {
        if total == 0 {
            return;
        }
        {
            let mut index = self.shared.index.lock().unwrap_or_else(|e| e.into_inner());
            index.selectivity.insert(key, (passes, total));
        }
        self.enqueue(Record::Selectivity { key, passes, total });
    }

    /// Durably forgets everything: clears the index, logs a tombstone,
    /// and synchronously compacts to an (empty or post-clear-only)
    /// snapshot, so a restart cannot resurrect cleared answers even if
    /// the process dies right after this call returns `Ok`. An `Err`
    /// means the durable clear did *not* happen (the in-memory index is
    /// cleared, but a restart may still see the old answers) — the
    /// compaction failure is propagated, never swallowed.
    pub fn tombstone_all(&self) -> Result<(), PersistError> {
        {
            let mut index = self.shared.index.lock().unwrap_or_else(|e| e.into_inner());
            index.rows.clear();
            index.selectivity.clear();
        }
        // Pending queue records describe rows the index no longer holds;
        // drop them so the flusher cannot write them after the clear.
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.pending.clear();
        }
        // The tombstone record makes the clear durable in the WAL; the
        // compaction makes it durable even if that record is later
        // superseded (and reclaims the dead bytes immediately).
        self.enqueue(Record::TombstoneAll);
        self.compact()
    }

    /// Blocks until every record enqueued before this call is on disk
    /// (flushed and fsynced). The durability barrier for graceful
    /// shutdown and tests.
    pub fn sync(&self) -> Result<(), PersistError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        // A sync ticket advances even with nothing pending: the flusher
        // answers it with an fsync of what is already written.
        queue.enqueued_ticket += 1;
        let ticket = queue.enqueued_ticket;
        self.shared.work.notify_one();
        while queue.flushed_ticket < ticket && !queue.shutdown {
            queue = self
                .shared
                .flushed
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
        Ok(())
    }

    /// Compacts now: snapshots the whole index into the next generation
    /// and retires the current WAL. Blocks until the flusher (the single
    /// WAL/snapshot writer) has completed it, and returns `Err` when the
    /// attempt failed (disk full, permissions) — an `Ok` from this call
    /// means the snapshot really is on disk.
    pub fn compact(&self) -> Result<(), PersistError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.compact_requested += 1;
        let ticket = queue.compact_requested;
        self.shared.work.notify_one();
        while queue.compact_done < ticket && !queue.shutdown {
            queue = self
                .shared
                .flushed
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
        if ticket <= queue.compact_failed_through {
            let message = queue
                .compact_error
                .clone()
                .unwrap_or_else(|| "unknown compaction failure".into());
            return Err(PersistError::Io {
                context: "compaction".into(),
                source: std::io::Error::other(message),
            });
        }
        Ok(())
    }

    /// Every persisted namespace key.
    pub fn namespaces(&self) -> Vec<PersistKey> {
        let index = self.shared.index.lock().unwrap_or_else(|e| e.into_inner());
        index.rows.keys().copied().collect()
    }

    /// The rows persisted under `key`: `(row, answer, ts_nanos)`.
    pub fn rows(&self, key: PersistKey) -> Option<Vec<(u32, bool, u64)>> {
        let index = self.shared.index.lock().unwrap_or_else(|e| e.into_inner());
        index.rows.get(&key).map(|ns| {
            let mut rows: Vec<(u32, bool, u64)> =
                ns.iter().map(|(&r, &(a, t))| (r, a, t)).collect();
            rows.sort_unstable_by_key(|&(r, _, _)| r);
            rows
        })
    }

    /// The absolute selectivity counters persisted under `key`.
    pub fn selectivity(&self, key: PersistKey) -> Option<(u64, u64)> {
        let index = self.shared.index.lock().unwrap_or_else(|e| e.into_inner());
        index.selectivity.get(&key).copied()
    }

    /// Every persisted selectivity counter: `(key, passes, total)`, in
    /// key order (selectivity keys need not have persisted rows).
    pub fn selectivities(&self) -> Vec<(PersistKey, u64, u64)> {
        let index = self.shared.index.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(PersistKey, u64, u64)> = index
            .selectivity
            .iter()
            .map(|(&k, &(p, t))| (k, p, t))
            .collect();
        out.sort_unstable_by_key(|&(k, _, _)| k);
        out
    }

    /// Total persisted row answers across namespaces.
    pub fn len(&self) -> usize {
        let index = self.shared.index.lock().unwrap_or_else(|e| e.into_inner());
        index.rows.values().map(|ns| ns.len()).sum()
    }

    /// Whether nothing is persisted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Life-so-far counters.
    pub fn stats(&self) -> PersistStats {
        self.shared.stats.snapshot()
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.shared.config.dir
    }

    fn enqueue(&self, record: Record) {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.pending.len() >= self.shared.config.queue_capacity {
            queue.pending.pop_front();
            self.shared.stats.shed.fetch_add(1, Ordering::Relaxed);
        }
        queue.pending.push_back(record);
        queue.enqueued_ticket += 1;
        self.shared.work.notify_one();
    }
}

impl Drop for PersistStore {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.shutdown = true;
            self.shared.work.notify_one();
        }
        if let Some(flusher) = self.flusher.take() {
            let _ = flusher.join();
        }
    }
}

/// Writes `snapshot-<g+1>` from the current index (temp + fsync +
/// rename), opens `wal-<g+1>`, and deletes generation `g`'s files.
/// **Flusher-thread only** (between batches): with a single WAL writer,
/// every record flushed before the index freeze is *in* the frozen index
/// (the hot path indexes synchronously before enqueuing), so the new
/// snapshot strictly covers the retired generation — a crash at any
/// point leaves either the complete old generation or the complete new
/// one.
fn compact_now(shared: &Shared, generation: u64) -> Result<(File, u64), PersistError> {
    let dir = &shared.config.dir;
    // Freeze a consistent image. Appends racing this freeze also sit in
    // the queue and will flush into the *new* WAL after rotation — a
    // record landing in both the snapshot and the new WAL replays
    // idempotently (first write wins, identical values).
    let records = {
        let index = shared.index.lock().unwrap_or_else(|e| e.into_inner());
        index.to_records()
    };
    let next = generation + 1;
    let tmp = dir.join(format!("snapshot-{next:06}.tmp"));
    {
        let mut f = File::create(&tmp).map_err(io_err(format!("create {}", tmp.display())))?;
        let mut buf = Vec::with_capacity(64 * 1024);
        buf.extend_from_slice(&file_header());
        for record in &records {
            encode_frame(record, &mut buf);
        }
        f.write_all(&buf)
            .map_err(io_err(format!("write {}", tmp.display())))?;
        f.sync_all()
            .map_err(io_err(format!("sync {}", tmp.display())))?;
    }
    let snap = snapshot_path(dir, next);
    fs::rename(&tmp, &snap).map_err(io_err(format!("rename {}", snap.display())))?;
    sync_dir(dir);
    let new_wal = create_with_header(&wal_path(dir, next))?;
    let _ = fs::remove_file(wal_path(dir, generation));
    let _ = fs::remove_file(snapshot_path(dir, generation));
    Ok((new_wal, next))
}

/// The flusher thread: drain → encode → append → fsync → maybe compact.
fn flusher_loop(shared: Arc<Shared>, mut wal: File, mut generation: u64) {
    let mut since_fsync = 0u64;
    let mut since_compact = 0u64;
    loop {
        let (batch, ticket, compact_ticket, shutdown) = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            while queue.pending.is_empty()
                && queue.flushed_ticket >= queue.enqueued_ticket
                && queue.compact_done >= queue.compact_requested
                && !queue.shutdown
            {
                queue = shared.work.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
            let batch: Vec<Record> = queue.pending.drain(..).collect();
            (
                batch,
                queue.enqueued_ticket,
                queue.compact_requested,
                queue.shutdown,
            )
        };
        let flushed = batch.len() as u64;
        if !batch.is_empty() {
            let mut buf = Vec::with_capacity(batch.len() * 48);
            for record in &batch {
                encode_frame(record, &mut buf);
            }
            // A write error is not recoverable from here (the hot path
            // must never block or fail on disk); the records stay in the
            // index, so the next compaction retries the disk with them.
            let _ = wal.write_all(&buf);
            shared.stats.flushed.fetch_add(flushed, Ordering::Relaxed);
            since_fsync += flushed;
            since_compact += flushed;
        }
        let want_fsync = match shared.config.fsync {
            FsyncPolicy::EveryBatch => flushed > 0,
            FsyncPolicy::EveryRecords(n) => since_fsync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        // A sync caller is parked on this ticket: sync() is the
        // durability barrier, so it always fsyncs regardless of policy.
        let answering_sync = {
            let queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.flushed_ticket < ticket
        };
        if want_fsync || answering_sync || shutdown {
            let _ = wal.sync_all();
            shared.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            since_fsync = 0;
        }
        // Compaction between batches: explicit requests, or the
        // automatic threshold.
        let threshold = shared.config.compact_after;
        let auto = threshold > 0 && since_compact >= threshold;
        let requested = {
            let queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.compact_done < compact_ticket
        };
        let mut compact_failure: Option<PersistError> = None;
        if auto || requested {
            match compact_now(&shared, generation) {
                Ok((new_wal, next)) => {
                    wal = new_wal;
                    generation = next;
                    shared.stats.compactions.fetch_add(1, Ordering::Relaxed);
                    since_fsync = 0;
                }
                // The error must reach any waiter parked on a compact
                // ticket (below); the records themselves stay in the
                // index, so a later attempt can still capture them.
                Err(e) => compact_failure = Some(e),
            }
            since_compact = 0;
        }
        {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            let mut wake = false;
            if queue.flushed_ticket < ticket {
                queue.flushed_ticket = ticket;
                wake = true;
            }
            if queue.compact_done < compact_ticket {
                queue.compact_done = compact_ticket;
                if let Some(e) = compact_failure {
                    queue.compact_failed_through = compact_ticket;
                    queue.compact_error = Some(e.to_string());
                }
                wake = true;
            }
            if wake {
                shared.flushed.notify_all();
            }
        }
        if shutdown {
            let remaining: Vec<Record> = {
                let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                queue.pending.drain(..).collect()
            };
            if !remaining.is_empty() {
                let mut buf = Vec::new();
                for record in &remaining {
                    encode_frame(record, &mut buf);
                }
                let _ = wal.write_all(&buf);
                shared
                    .stats
                    .flushed
                    .fetch_add(remaining.len() as u64, Ordering::Relaxed);
            }
            let _ = wal.sync_all();
            shared.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
            // Release anyone still parked on a sync or compact ticket.
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.flushed_ticket = queue.enqueued_ticket;
            queue.compact_done = queue.compact_requested;
            shared.flushed.notify_all();
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "expred-persist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn key(n: u64) -> PersistKey {
        PersistKey {
            udf: n,
            table: 100 + n,
            version: 200 + n,
        }
    }

    #[test]
    fn round_trip_across_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
            store.append_row(key(1), 0, true, 10);
            store.append_row(key(1), 1, false, 11);
            store.append_row(key(2), 7, true, 12);
            store.record_selectivity(key(1), 3, 9);
            store.sync().unwrap();
        }
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(
            store.rows(key(1)).unwrap(),
            vec![(0, true, 10), (1, false, 11)]
        );
        assert_eq!(store.rows(key(2)).unwrap(), vec![(7, true, 12)]);
        assert_eq!(store.selectivity(key(1)), Some((3, 9)));
        assert_eq!(store.stats().recovered_rows, 3);
        assert_eq!(store.stats().recovered_namespaces, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn graceful_drop_flushes_without_explicit_sync() {
        let dir = tmpdir("dropflush");
        {
            let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
            for row in 0..100 {
                store.append_row(key(1), row, row % 2 == 0, row as u64);
            }
        }
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.rows(key(1)).unwrap().len(), 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn first_write_wins_and_reoffers_are_free() {
        let dir = tmpdir("firstwrite");
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        store.append_row(key(1), 5, true, 100);
        store.append_row(key(1), 5, true, 999);
        assert_eq!(store.stats().appended, 1, "re-offer is a no-op");
        assert_eq!(store.rows(key(1)).unwrap(), vec![(5, true, 100)]);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstone_survives_restart() {
        let dir = tmpdir("tombstone");
        {
            let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
            store.append_row(key(1), 0, true, 1);
            store.sync().unwrap();
            store.tombstone_all().unwrap();
            // Answers written *after* a clear are fresh state, kept.
            store.append_row(key(2), 3, false, 2);
        }
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.rows(key(1)), None, "cleared namespace resurrected");
        assert_eq!(store.rows(key(2)).unwrap(), vec![(3, false, 2)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_contents_and_retires_the_wal() {
        let dir = tmpdir("compact");
        {
            let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
            for row in 0..500 {
                store.append_row(key(1), row, row % 3 == 0, row as u64);
            }
            store.record_selectivity(key(1), 167, 500);
            store.compact().unwrap();
            // Post-compaction appends land in the new generation's WAL.
            store.append_row(key(2), 1, true, 7);
            store.sync().unwrap();
        }
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.rows(key(1)).unwrap().len(), 500);
        assert_eq!(store.selectivity(key(1)), Some((167, 500)));
        assert_eq!(store.rows(key(2)).unwrap(), vec![(1, true, 7)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn automatic_compaction_fires_past_the_threshold() {
        let dir = tmpdir("autocompact");
        {
            let store = PersistStore::open(
                PersistConfig::new(&dir)
                    .with_compact_after(64)
                    .with_fsync(FsyncPolicy::Never),
            )
            .unwrap();
            for row in 0..1_000 {
                store.append_row(key(1), row, true, row as u64);
            }
            store.sync().unwrap();
            // Give the flusher a beat to run its post-batch compaction.
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while store.stats().compactions == 0 && std::time::Instant::now() < deadline {
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            assert!(store.stats().compactions >= 1, "threshold never fired");
        }
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.rows(key(1)).unwrap().len(), 1_000);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shedding_bounds_the_queue_but_keeps_the_index() {
        let dir = tmpdir("shed");
        {
            let store = PersistStore::open(
                PersistConfig::new(&dir)
                    .with_queue_capacity(4)
                    .with_compact_after(0),
            )
            .unwrap();
            // Flood while the flusher may lag: shedding is allowed,
            // index completeness is not.
            for row in 0..2_000 {
                store.append_row(key(1), row, true, 0);
            }
            assert_eq!(store.len(), 2_000);
            // A sync + compact captures the index regardless of sheds.
            store.compact().unwrap();
        }
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.rows(key(1)).unwrap().len(), 2_000);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_io_failure_surfaces_to_waiters_instead_of_ok() {
        let dir = tmpdir("compactfail");
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        store.append_row(key(1), 0, true, 1);
        store.sync().unwrap();
        // Yank the directory out from under the store: the snapshot temp
        // file cannot be created, so the attempt must fail *loudly* —
        // an Ok here would report durability that never happened.
        fs::remove_dir_all(&dir).unwrap();
        assert!(store.compact().is_err(), "compaction failure swallowed");
        assert!(
            store.tombstone_all().is_err(),
            "tombstone claimed durability without a snapshot"
        );
        assert_eq!(store.stats().compactions, 0);
        // Once the directory is back, the next request succeeds — the
        // recorded failure covers only the tickets it answered.
        fs::create_dir_all(&dir).unwrap();
        store.compact().expect("compaction works once the dir is back");
        assert_eq!(store.stats().compactions, 1);
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_wal_tail_recovers_the_prefix_and_appends_cleanly() {
        let dir = tmpdir("tail");
        {
            let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
            for row in 0..10 {
                store.append_row(key(1), row, true, row as u64);
            }
            store.sync().unwrap();
        }
        // Chop the WAL mid-frame.
        let wal = wal_path(&dir, 0);
        let len = fs::metadata(&wal).unwrap().len();
        let f = OpenOptions::new().write(true).open(&wal).unwrap();
        f.set_len(len - 5).unwrap();
        drop(f);
        {
            let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
            let recovered = store.rows(key(1)).unwrap().len();
            assert_eq!(recovered, 9, "one torn record lost, prefix kept");
            assert!(store.stats().tail_bytes_discarded > 0);
            // Appends after recovery extend the truncated (clean) file.
            store.append_row(key(1), 99, false, 99);
            store.sync().unwrap();
        }
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.rows(key(1)).unwrap().len(), 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_or_garbage_files_are_ignored_not_fatal() {
        let dir = tmpdir("garbage");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("snapshot-000003"), b"not a persist file").unwrap();
        fs::write(dir.join("wal-000003"), b"NOPE").unwrap();
        fs::write(dir.join("README"), b"hello").unwrap();
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert!(store.is_empty());
        store.append_row(key(1), 1, true, 1);
        store.sync().unwrap();
        drop(store);
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.rows(key(1)).unwrap(), vec![(1, true, 1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_with_nothing_pending_returns_immediately() {
        let dir = tmpdir("emptysync");
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        store.sync().unwrap();
        store.sync().unwrap();
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_appends_all_land() {
        let dir = tmpdir("concurrent");
        {
            let store = Arc::new(PersistStore::open(PersistConfig::new(&dir)).unwrap());
            std::thread::scope(|scope| {
                for worker in 0..8u32 {
                    let store = Arc::clone(&store);
                    scope.spawn(move || {
                        for i in 0..250u32 {
                            store.append_row(key(worker as u64), i, true, 0);
                        }
                    });
                }
            });
            store.sync().unwrap();
        }
        let store = PersistStore::open(PersistConfig::new(&dir)).unwrap();
        assert_eq!(store.len(), 2_000);
        for worker in 0..8u64 {
            assert_eq!(store.rows(key(worker)).unwrap().len(), 250);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
