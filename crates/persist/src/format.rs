//! The on-disk format: checksummed, length-prefixed, versioned frames.
//!
//! Both file kinds (WAL and snapshot) share one layout:
//!
//! ```text
//! file   := header frame*
//! header := magic "EXPD" (4 bytes) | format version (u32 le)
//! frame  := payload length (u32 le) | crc32(payload) (u32 le) | payload
//! ```
//!
//! The payload's first byte is a record tag; everything after it is
//! fixed-width little-endian fields. Decoding is *defensive by
//! construction*: a frame whose length prefix overruns the buffer (a
//! truncated tail), whose CRC does not match (bit rot, a torn write),
//! whose tag is unknown, or whose payload length disagrees with its tag
//! stops replay at that point — the valid prefix before it is recovered,
//! the tail is never trusted. Recovery never panics on file contents.

/// File magic: the first four bytes of every persist file.
pub const MAGIC: [u8; 4] = *b"EXPD";

/// Current format version. Files written by a different version are
/// ignored wholesale on recovery (never partially interpreted).
pub const FORMAT_VERSION: u32 = 1;

/// Length of the file header (magic + version).
pub const HEADER_LEN: usize = 8;

/// Per-frame overhead (length prefix + CRC).
pub const FRAME_OVERHEAD: usize = 8;

/// Upper bound on a single frame's payload; a corrupt length prefix
/// must not make recovery attempt a multi-gigabyte allocation.
pub const MAX_PAYLOAD: usize = 1 << 26;

/// The serialized file header.
pub fn file_header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..4].copy_from_slice(&MAGIC);
    h[4..].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h
}

/// Whether `bytes` starts with a header this version can read.
pub fn check_header(bytes: &[u8]) -> bool {
    bytes.len() >= HEADER_LEN
        && bytes[..4] == MAGIC
        && bytes[4..HEADER_LEN] == FORMAT_VERSION.to_le_bytes()
}

/// CRC-32 (IEEE, reflected) lookup table, built at compile time so the
/// crate stays dependency-free.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) over `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// The durable identity of one cache namespace.
///
/// Deliberately *not* the runtime `CacheNamespace`: that keys by
/// `TableId`, a process-local counter that means nothing after a
/// restart. Here `table` is the table's **schema fingerprint**
/// (structural, process-independent) and `version` its **content
/// fingerprint** — two tables agreeing on both hold the same rows under
/// the same columns, so an answer persisted under this key is valid for
/// any future process that re-materializes the same table state. The
/// engine maintains the `TableId` → schema-fingerprint mapping at
/// registration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PersistKey {
    /// The UDF's stable fingerprint.
    pub udf: u64,
    /// The table's schema (structure) fingerprint.
    pub table: u64,
    /// The table's content version fingerprint.
    pub version: u64,
}

/// One durable record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// One fresh row answer, stamped with its write time (Unix nanos)
    /// so TTL policies survive a restart.
    Row {
        /// Namespace the answer belongs to.
        key: PersistKey,
        /// Row index within the table.
        row: u32,
        /// The UDF's answer.
        answer: bool,
        /// Write timestamp, nanoseconds since the Unix epoch.
        ts_nanos: u64,
    },
    /// A whole namespace's rows in one frame (snapshot compaction).
    RowBatch {
        /// Namespace the rows belong to.
        key: PersistKey,
        /// `(row, answer, ts_nanos)` triples.
        rows: Vec<(u32, bool, u64)>,
    },
    /// Everything before this point is cleared (durable
    /// `clear_caches`): replay drops all namespaces seen so far.
    TombstoneAll,
    /// Absolute selectivity counters for one namespace. Overwrite
    /// semantics — replay keeps the *last* record, so flushing a
    /// snapshot of live counters can never double-count across
    /// restarts.
    Selectivity {
        /// Namespace the counters describe.
        key: PersistKey,
        /// Observed passing evaluations.
        passes: u64,
        /// Observed total evaluations.
        total: u64,
    },
}

const TAG_ROW: u8 = 0x01;
const TAG_TOMBSTONE_ALL: u8 = 0x02;
const TAG_SELECTIVITY: u8 = 0x04;
const TAG_ROW_BATCH: u8 = 0x05;

/// Why a frame could not be decoded. Every variant means the same thing
/// to recovery: stop here, keep the prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends inside the frame (truncated tail).
    Truncated,
    /// The payload does not match its checksum.
    BadChecksum,
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    BadLength,
    /// Unknown record tag, or a payload whose size disagrees with it.
    Malformed,
}

fn put_key(out: &mut Vec<u8>, key: PersistKey) {
    out.extend_from_slice(&key.udf.to_le_bytes());
    out.extend_from_slice(&key.table.to_le_bytes());
    out.extend_from_slice(&key.version.to_le_bytes());
}

/// Appends `record` to `out` as one framed, checksummed unit.
pub fn encode_frame(record: &Record, out: &mut Vec<u8>) {
    let mut payload = Vec::with_capacity(64);
    match record {
        Record::Row {
            key,
            row,
            answer,
            ts_nanos,
        } => {
            payload.push(TAG_ROW);
            put_key(&mut payload, *key);
            payload.extend_from_slice(&row.to_le_bytes());
            payload.push(*answer as u8);
            payload.extend_from_slice(&ts_nanos.to_le_bytes());
        }
        Record::RowBatch { key, rows } => {
            payload.push(TAG_ROW_BATCH);
            put_key(&mut payload, *key);
            payload.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for (row, answer, ts_nanos) in rows {
                payload.extend_from_slice(&row.to_le_bytes());
                payload.push(*answer as u8);
                payload.extend_from_slice(&ts_nanos.to_le_bytes());
            }
        }
        Record::TombstoneAll => payload.push(TAG_TOMBSTONE_ALL),
        Record::Selectivity { key, passes, total } => {
            payload.push(TAG_SELECTIVITY);
            put_key(&mut payload, *key);
            payload.extend_from_slice(&passes.to_le_bytes());
            payload.extend_from_slice(&total.to_le_bytes());
        }
    }
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// A little-endian cursor over a payload; every read is bounds-checked
/// so corrupt payloads surface as [`DecodeError::Malformed`], never a
/// slice panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).ok_or(DecodeError::Malformed)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Malformed);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn key(&mut self) -> Result<PersistKey, DecodeError> {
        Ok(PersistKey {
            udf: self.u64()?,
            table: self.u64()?,
            version: self.u64()?,
        })
    }

    fn done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

/// Decodes one frame at the start of `bytes`, returning the record and
/// how many bytes the frame occupied.
pub fn decode_frame(bytes: &[u8]) -> Result<(Record, usize), DecodeError> {
    if bytes.len() < FRAME_OVERHEAD {
        return Err(DecodeError::Truncated);
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
    if len > MAX_PAYLOAD {
        return Err(DecodeError::BadLength);
    }
    let want = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let end = FRAME_OVERHEAD + len;
    if bytes.len() < end {
        return Err(DecodeError::Truncated);
    }
    let payload = &bytes[FRAME_OVERHEAD..end];
    if crc32(payload) != want {
        return Err(DecodeError::BadChecksum);
    }
    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let record = match c.u8()? {
        TAG_ROW => Record::Row {
            key: c.key()?,
            row: c.u32()?,
            answer: c.u8()? != 0,
            ts_nanos: c.u64()?,
        },
        TAG_ROW_BATCH => {
            let key = c.key()?;
            let count = c.u32()? as usize;
            // 13 bytes per entry: a count that overruns the payload is
            // rejected before any allocation is sized by it.
            if count > payload.len() / 13 {
                return Err(DecodeError::Malformed);
            }
            let mut rows = Vec::with_capacity(count);
            for _ in 0..count {
                rows.push((c.u32()?, c.u8()? != 0, c.u64()?));
            }
            Record::RowBatch { key, rows }
        }
        TAG_TOMBSTONE_ALL => Record::TombstoneAll,
        TAG_SELECTIVITY => Record::Selectivity {
            key: c.key()?,
            passes: c.u64()?,
            total: c.u64()?,
        },
        _ => return Err(DecodeError::Malformed),
    };
    if !c.done() {
        return Err(DecodeError::Malformed);
    }
    Ok((record, end))
}

/// Replays every valid frame from the start of `bytes` (which excludes
/// the file header), calling `apply` per record. Returns the byte
/// length of the valid prefix; decoding stops at the first bad frame.
pub fn replay_frames(bytes: &[u8], mut apply: impl FnMut(Record)) -> usize {
    let mut at = 0;
    while at < bytes.len() {
        match decode_frame(&bytes[at..]) {
            Ok((record, consumed)) => {
                apply(record);
                at += consumed;
            }
            Err(_) => break,
        }
    }
    at
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> PersistKey {
        PersistKey {
            udf: n,
            table: n + 1,
            version: n + 2,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn every_record_kind_round_trips() {
        let records = [
            Record::Row {
                key: key(7),
                row: 42,
                answer: true,
                ts_nanos: 123_456_789,
            },
            Record::RowBatch {
                key: key(1),
                rows: vec![(0, false, 1), (9, true, 2), (u32::MAX, true, u64::MAX)],
            },
            Record::TombstoneAll,
            Record::Selectivity {
                key: key(3),
                passes: 10,
                total: 40,
            },
        ];
        let mut buf = Vec::new();
        for r in &records {
            encode_frame(r, &mut buf);
        }
        let mut got = Vec::new();
        let valid = replay_frames(&buf, |r| got.push(r));
        assert_eq!(valid, buf.len());
        assert_eq!(got, records);
    }

    #[test]
    fn truncation_recovers_the_frame_prefix() {
        let mut buf = Vec::new();
        let mut ends = Vec::new();
        for i in 0..5u32 {
            encode_frame(
                &Record::Row {
                    key: key(1),
                    row: i,
                    answer: i % 2 == 0,
                    ts_nanos: 0,
                },
                &mut buf,
            );
            ends.push(buf.len());
        }
        for cut in 0..buf.len() {
            let whole_frames = ends.iter().filter(|&&e| e <= cut).count();
            let mut got = 0;
            let valid = replay_frames(&buf[..cut], |_| got += 1);
            assert_eq!(got, whole_frames, "cut at {cut}");
            assert_eq!(
                valid,
                ends.get(whole_frames.wrapping_sub(1)).copied().unwrap_or(0)
            );
        }
    }

    #[test]
    fn corruption_stops_replay_without_panicking() {
        let mut clean = Vec::new();
        for i in 0..4u32 {
            encode_frame(
                &Record::Row {
                    key: key(2),
                    row: i,
                    answer: true,
                    ts_nanos: i as u64,
                },
                &mut clean,
            );
        }
        for at in 0..clean.len() {
            let mut buf = clean.clone();
            buf[at] ^= 0xFF;
            let mut got: Vec<Record> = Vec::new();
            replay_frames(&buf, |r| got.push(r));
            // Whatever is recovered must be a prefix of the clean records.
            let mut want: Vec<Record> = Vec::new();
            replay_frames(&clean, |r| want.push(r));
            assert!(got.len() <= want.len());
            assert_eq!(got[..], want[..got.len()], "corrupt byte at {at}");
        }
    }

    #[test]
    fn header_is_versioned() {
        let h = file_header();
        assert!(check_header(&h));
        let mut wrong_version = h;
        wrong_version[4] ^= 1;
        assert!(!check_header(&wrong_version));
        assert!(!check_header(b"EXP"));
        assert!(!check_header(b"NOPE1234"));
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.resize(1024, 0);
        assert_eq!(decode_frame(&buf), Err(DecodeError::BadLength));
    }
}
