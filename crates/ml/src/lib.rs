//! Machine-learning substrate for the `expred` workspace.
//!
//! Three roles in the reproduction:
//!
//! 1. the **virtual correlated column** (paper §4.4 method 2, §6.3.2):
//!    [`features`] + [`logistic`] score every tuple, and the bucketized
//!    scores act as the grouping attribute;
//! 2. the **Learning** baseline (§6.2): self-training semi-supervised
//!    classification in [`semisupervised`];
//! 3. the **Multiple** baseline (§6.2): multiple imputations from class
//!    probabilities, also in [`semisupervised`].
//!
//! [`metrics`] provides the precision/recall measurements used across the
//! workspace.

pub mod features;
pub mod logistic;
pub mod metrics;
pub mod semisupervised;

pub use features::{
    extract_features, extract_features_cached, extract_features_reference, FeatureMatrix,
    FeatureSpec,
};
pub use logistic::{train, LogisticModel, TrainConfig};
pub use metrics::{precision_recall, precision_recall_mask, PrSummary};
pub use semisupervised::{
    impute, learning_returned_set, multiple_imputations, self_train, SelfTrainConfig,
    SelfTrainOutcome,
};
