//! Logistic regression, trained with full-batch gradient descent.
//!
//! This is the regressor behind the paper's *virtual column* (§4.4 second
//! method, §6.3.2) and its semi-supervised baselines (§6.2). Zero
//! initialization plus full-batch gradients keep training fully
//! deterministic; features are expected standardized (see
//! [`crate::features`]), which makes a fixed step size reliable.

use crate::features::FeatureMatrix;

/// Training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Maximum full-batch epochs.
    pub epochs: usize,
    /// Step size (safe for standardized features).
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Stop early when the loss improves less than this per epoch.
    pub tolerance: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 300,
            learning_rate: 0.5,
            l2: 1e-4,
            tolerance: 1e-7,
        }
    }
}

/// A trained logistic model `P(y=1 | x) = σ(w·x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticModel {
    /// Trained weights (one per feature).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Trained intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicted probability for one feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.weights.len());
        let z: f64 = self.bias + self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
        sigmoid(z)
    }

    /// Predicted probabilities for a subset of matrix rows.
    pub fn predict_rows(&self, features: &FeatureMatrix, rows: &[usize]) -> Vec<f64> {
        rows.iter()
            .map(|&r| self.predict(features.row(r)))
            .collect()
    }

    /// Predicted probabilities for every matrix row.
    pub fn predict_all(&self, features: &FeatureMatrix) -> Vec<f64> {
        (0..features.rows())
            .map(|r| self.predict(features.row(r)))
            .collect()
    }
}

/// Trains on the given rows of `features` with boolean targets.
///
/// `rows` and `targets` must be parallel and nonempty. Degenerate
/// single-class training sets are handled (the model converges to a
/// constant probability near the class rate).
pub fn train(
    features: &FeatureMatrix,
    rows: &[usize],
    targets: &[bool],
    config: TrainConfig,
) -> LogisticModel {
    assert_eq!(rows.len(), targets.len(), "rows/targets must be parallel");
    assert!(!rows.is_empty(), "cannot train on an empty sample");
    let dim = features.dim();
    let n = rows.len() as f64;
    let mut weights = vec![0.0; dim];
    let mut bias = 0.0;
    let mut prev_loss = f64::INFINITY;
    let mut lr = config.learning_rate;

    for _ in 0..config.epochs {
        let mut grad_w = vec![0.0; dim];
        let mut grad_b = 0.0;
        let mut loss = 0.0;
        for (&r, &y) in rows.iter().zip(targets) {
            let x = features.row(r);
            let p = {
                let z: f64 = bias + weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                sigmoid(z)
            };
            let err = p - if y { 1.0 } else { 0.0 };
            for (g, &v) in grad_w.iter_mut().zip(x) {
                *g += err * v;
            }
            grad_b += err;
            // Cross-entropy with clamping for numerical safety.
            let p_safe = p.clamp(1e-12, 1.0 - 1e-12);
            loss -= if y { p_safe.ln() } else { (1.0 - p_safe).ln() };
        }
        loss /= n;
        for (g, w) in grad_w.iter_mut().zip(&weights) {
            *g = *g / n + config.l2 * w;
        }
        grad_b /= n;
        // Simple backtracking: if the loss increased, halve the step.
        if loss > prev_loss + 1e-12 {
            lr *= 0.5;
            if lr < 1e-6 {
                break;
            }
        } else if prev_loss - loss < config.tolerance {
            break;
        }
        prev_loss = loss;
        for (w, g) in weights.iter_mut().zip(&grad_w) {
            *w -= lr * g;
        }
        bias -= lr * grad_b;
    }
    LogisticModel { weights, bias }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{extract_features, FeatureSpec};
    use expred_table::{DataType, Field, Schema, Table, Value};

    /// A linearly separable 1-D problem: x < 0 -> false, x > 0 -> true.
    fn separable_matrix() -> (FeatureMatrix, Vec<usize>, Vec<bool>) {
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let mut rows = Vec::new();
        let mut targets = Vec::new();
        for i in 0..100 {
            let x = (i as f64 - 49.5) / 10.0;
            rows.push(vec![Value::Float(x)]);
            targets.push(x > 0.0);
        }
        let table = Table::from_rows(schema, rows).unwrap();
        let features = extract_features(&table, &[], FeatureSpec::default());
        ((features), (0..100).collect(), targets)
    }

    #[test]
    fn learns_separable_boundary() {
        let (features, rows, targets) = separable_matrix();
        let model = train(&features, &rows, &targets, TrainConfig::default());
        let mut correct = 0;
        for (&r, &y) in rows.iter().zip(&targets) {
            let p = model.predict(features.row(r));
            if (p > 0.5) == y {
                correct += 1;
            }
        }
        assert!(correct >= 98, "classified {correct}/100");
        assert!(model.weights()[0] > 0.0, "positive slope expected");
    }

    #[test]
    fn probabilities_are_monotone_in_signal() {
        let (features, rows, targets) = separable_matrix();
        let model = train(&features, &rows, &targets, TrainConfig::default());
        let probs = model.predict_all(&features);
        for w in probs.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "monotone in x");
        }
    }

    #[test]
    fn single_class_training_is_stable() {
        let (features, rows, _) = separable_matrix();
        let targets = vec![true; rows.len()];
        let model = train(&features, &rows, &targets, TrainConfig::default());
        let p = model.predict(features.row(50));
        assert!(p > 0.8, "all-true sample must predict high probability");
        assert!(p.is_finite());
    }

    #[test]
    fn training_is_deterministic() {
        let (features, rows, targets) = separable_matrix();
        let a = train(&features, &rows, &targets, TrainConfig::default());
        let b = train(&features, &rows, &targets, TrainConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (features, rows, targets) = separable_matrix();
        let loose = train(
            &features,
            &rows,
            &targets,
            TrainConfig {
                l2: 0.0,
                ..TrainConfig::default()
            },
        );
        let tight = train(
            &features,
            &rows,
            &targets,
            TrainConfig {
                l2: 1.0,
                ..TrainConfig::default()
            },
        );
        assert!(tight.weights()[0].abs() < loose.weights()[0].abs());
    }

    #[test]
    fn sigmoid_extremes_are_safe() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let (features, _, _) = separable_matrix();
        train(&features, &[], &[], TrainConfig::default());
    }
}
