//! Set-retrieval quality metrics.
//!
//! The paper measures answers in information-retrieval terms: with `C` the
//! true result set and `R` the returned set, precision is `|R∩C|/|R|` and
//! recall `|R∩C|/|C|` (§1). These helpers are used both by the baselines
//! (to find their smallest sufficient training size) and by the experiment
//! harness (to verify constraint satisfaction).

/// Precision/recall of a returned row set against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrSummary {
    /// `|R ∩ C| / |R|`; defined as 1 when nothing is returned (an empty
    /// answer asserts nothing false).
    pub precision: f64,
    /// `|R ∩ C| / |C|`; defined as 1 when there are no correct tuples.
    pub recall: f64,
    /// Number of returned rows `|R|`.
    pub returned: usize,
    /// Number of returned correct rows `|R ∩ C|`.
    pub true_positives: usize,
    /// Number of correct rows overall `|C|`.
    pub total_correct: usize,
}

impl PrSummary {
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision;
        let r = self.recall;
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Whether this outcome meets the paper's `(α, β)` constraints.
    pub fn meets(&self, alpha: f64, beta: f64) -> bool {
        self.precision >= alpha && self.recall >= beta
    }
}

/// Computes precision/recall for a returned set of row ids against a
/// per-row truth vector.
pub fn precision_recall(returned: &[usize], truth: &[bool]) -> PrSummary {
    let total_correct = truth.iter().filter(|&&t| t).count();
    let mut true_positives = 0;
    for &r in returned {
        assert!(r < truth.len(), "returned row {r} out of range");
        if truth[r] {
            true_positives += 1;
        }
    }
    let precision = if returned.is_empty() {
        1.0
    } else {
        true_positives as f64 / returned.len() as f64
    };
    let recall = if total_correct == 0 {
        1.0
    } else {
        true_positives as f64 / total_correct as f64
    };
    PrSummary {
        precision,
        recall,
        returned: returned.len(),
        true_positives,
        total_correct,
    }
}

/// Computes precision/recall from a boolean predicted-set vector.
pub fn precision_recall_mask(predicted: &[bool], truth: &[bool]) -> PrSummary {
    assert_eq!(predicted.len(), truth.len());
    let returned: Vec<usize> = predicted
        .iter()
        .enumerate()
        .filter(|(_, &p)| p)
        .map(|(i, _)| i)
        .collect();
    precision_recall(&returned, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let truth = [true, false, true, true, false];
        let s = precision_recall(&[0, 1, 2], &truth);
        assert_eq!(s.true_positives, 2);
        assert_eq!(s.returned, 3);
        assert_eq!(s.total_correct, 3);
        assert!((s.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_returned_set() {
        let truth = [true, false];
        let s = precision_recall(&[], &truth);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn no_correct_tuples() {
        let truth = [false, false];
        let s = precision_recall(&[0], &truth);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.precision, 0.0);
    }

    #[test]
    fn perfect_answer() {
        let truth = [true, false, true];
        let s = precision_recall(&[0, 2], &truth);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1(), 1.0);
        assert!(s.meets(0.99, 0.99));
    }

    #[test]
    fn mask_matches_index_form() {
        let truth = [true, false, true, false];
        let mask = [true, true, false, false];
        let a = precision_recall_mask(&mask, &truth);
        let b = precision_recall(&[0, 1], &truth);
        assert_eq!(a, b);
    }

    #[test]
    fn meets_respects_both_bounds() {
        let truth = [true, true, false, false];
        let s = precision_recall(&[0, 2], &truth); // p = 0.5, r = 0.5
        assert!(s.meets(0.5, 0.5));
        assert!(!s.meets(0.6, 0.5));
        assert!(!s.meets(0.5, 0.6));
    }

    #[test]
    #[should_panic]
    fn out_of_range_returned_row_panics() {
        precision_recall(&[5], &[true]);
    }
}
