//! Feature extraction from tables.
//!
//! The virtual-column method and the ML baselines (paper §4.4, §6.2,
//! §6.3.2) need numeric feature vectors. Following the paper's own
//! overfitting guard — "we only use columns that are either numeric or
//! nominal with < 50 different values" — this module standardizes numeric
//! columns and one-hot encodes low-cardinality categorical columns.

use expred_table::{Column, DataType, Table};
use std::collections::BTreeMap;

/// Feature-extraction policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureSpec {
    /// Categorical columns with more distinct values than this are dropped
    /// (the paper uses 50).
    pub max_categorical_cardinality: usize,
    /// Integer columns with at most this many distinct values are treated
    /// as categorical rather than numeric.
    pub int_categorical_threshold: usize,
}

impl Default for FeatureSpec {
    fn default() -> Self {
        Self {
            max_categorical_cardinality: 50,
            int_categorical_threshold: 20,
        }
    }
}

/// A dense row-major feature matrix with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    rows: usize,
    dim: usize,
    data: Vec<f64>,
    feature_names: Vec<String>,
}

impl FeatureMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature vector of one row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Human-readable feature names (column or column=value).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }
}

/// Extracts standardized/one-hot features from every eligible column of
/// `table` except those in `exclude`.
///
/// * Float columns (and high-cardinality Int columns) are standardized to
///   zero mean / unit variance; NULLs map to the mean (0 after
///   standardization).
/// * Str/Bool columns (and low-cardinality Int columns) are one-hot
///   encoded; NULL becomes its own category. Columns whose cardinality
///   exceeds the spec's limit are dropped.
pub fn extract_features(table: &Table, exclude: &[&str], spec: FeatureSpec) -> FeatureMatrix {
    let n = table.num_rows();
    let mut columns: Vec<(String, Encoding)> = Vec::new();
    for field in table.schema().fields() {
        if exclude.contains(&field.name()) {
            continue;
        }
        let col = table.column(field.name()).expect("schema-listed column");
        let enc = match field.data_type() {
            DataType::Float => numeric_encoding(col, n),
            DataType::Int => {
                if col.distinct_count() <= spec.int_categorical_threshold {
                    categorical_encoding(col, n, spec.max_categorical_cardinality)
                } else {
                    numeric_encoding(col, n)
                }
            }
            DataType::Bool | DataType::Str => {
                categorical_encoding(col, n, spec.max_categorical_cardinality)
            }
        };
        if let Some(enc) = enc {
            columns.push((field.name().to_owned(), enc));
        }
    }

    let dim: usize = columns.iter().map(|(_, e)| e.width()).sum();
    let mut data = vec![0.0; n * dim];
    let mut feature_names = Vec::with_capacity(dim);
    let mut offset = 0;
    for (name, enc) in &columns {
        match enc {
            Encoding::Numeric { mean, std } => {
                feature_names.push(name.clone());
                let col = table.column(name).unwrap();
                for r in 0..n {
                    let v = col.float_at(r).unwrap_or(*mean);
                    data[r * dim + offset] = if *std > 0.0 { (v - mean) / std } else { 0.0 };
                }
                offset += 1;
            }
            Encoding::OneHot { categories } => {
                for cat in categories.keys() {
                    feature_names.push(format!("{name}={cat}"));
                }
                let col = table.column(name).unwrap();
                for r in 0..n {
                    let key = cell_key(col, r);
                    if let Some(&slot) = categories.get(&key) {
                        data[r * dim + offset + slot] = 1.0;
                    }
                }
                offset += categories.len();
            }
        }
    }
    debug_assert_eq!(offset, dim);
    FeatureMatrix {
        rows: n,
        dim,
        data,
        feature_names,
    }
}

enum Encoding {
    Numeric { mean: f64, std: f64 },
    OneHot { categories: BTreeMap<String, usize> },
}

impl Encoding {
    fn width(&self) -> usize {
        match self {
            Encoding::Numeric { .. } => 1,
            Encoding::OneHot { categories } => categories.len(),
        }
    }
}

fn numeric_encoding(col: &Column, n: usize) -> Option<Encoding> {
    let mut acc = expred_stats::descriptive::Accumulator::new();
    for r in 0..n {
        if let Some(v) = col.float_at(r) {
            acc.push(v);
        }
    }
    Some(Encoding::Numeric {
        mean: acc.mean(),
        std: acc.std_dev(),
    })
}

fn categorical_encoding(col: &Column, n: usize, max_card: usize) -> Option<Encoding> {
    let mut categories: BTreeMap<String, usize> = BTreeMap::new();
    for r in 0..n {
        let key = cell_key(col, r);
        let next = categories.len();
        categories.entry(key).or_insert(next);
        if categories.len() > max_card {
            return None; // too many distinct values: drop the column
        }
    }
    // Re-index in sorted order for determinism.
    let keys: Vec<String> = categories.keys().cloned().collect();
    let categories = keys.into_iter().enumerate().map(|(i, k)| (k, i)).collect();
    Some(Encoding::OneHot { categories })
}

fn cell_key(col: &Column, r: usize) -> String {
    let v = col.value(r);
    if v.is_null() {
        "\u{0}NULL".to_owned()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::{Field, Schema, Value};

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("income", DataType::Float),
            Field::new("grade", DataType::Str),
            Field::new("flag", DataType::Bool),
            Field::new("id", DataType::Int),
            Field::new("label", DataType::Bool),
        ]);
        let rows = vec![
            vec![
                Value::Float(10.0),
                Value::from("A"),
                Value::Bool(true),
                Value::Int(0),
                Value::Bool(true),
            ],
            vec![
                Value::Float(20.0),
                Value::from("B"),
                Value::Bool(false),
                Value::Int(1),
                Value::Bool(false),
            ],
            vec![
                Value::Float(30.0),
                Value::from("A"),
                Value::Bool(true),
                Value::Int(2),
                Value::Bool(true),
            ],
            vec![
                Value::Float(40.0),
                Value::from("C"),
                Value::Bool(false),
                Value::Int(3),
                Value::Bool(false),
            ],
        ];
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn excludes_and_encodes() {
        let t = sample_table();
        let m = extract_features(&t, &["label", "id"], FeatureSpec::default());
        assert_eq!(m.rows(), 4);
        // income (1) + grade one-hot (3) + flag one-hot (2) = 6.
        assert_eq!(m.dim(), 6);
        assert!(m.feature_names().contains(&"income".to_owned()));
        assert!(m.feature_names().contains(&"grade=A".to_owned()));
        assert!(m.feature_names().iter().all(|n| !n.starts_with("label")));
    }

    #[test]
    fn numeric_standardization() {
        let t = sample_table();
        let m = extract_features(
            &t,
            &["label", "id", "grade", "flag"],
            FeatureSpec::default(),
        );
        assert_eq!(m.dim(), 1);
        let mean: f64 = (0..4).map(|r| m.row(r)[0]).sum::<f64>() / 4.0;
        let var: f64 = (0..4).map(|r| m.row(r)[0].powi(2)).sum::<f64>() / 4.0 - mean * mean;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_hot_rows_sum_to_one_per_column() {
        let t = sample_table();
        let m = extract_features(
            &t,
            &["label", "id", "income", "flag"],
            FeatureSpec::default(),
        );
        // grade one-hot only: each row has exactly one hot slot.
        assert_eq!(m.dim(), 3);
        for r in 0..4 {
            let s: f64 = m.row(r).iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn high_cardinality_categoricals_dropped() {
        let schema = Schema::new(vec![Field::new("s", DataType::Str)]);
        let rows = (0..100)
            .map(|i| vec![Value::Str(format!("v{i}"))])
            .collect();
        let t = Table::from_rows(schema, rows).unwrap();
        let m = extract_features(&t, &[], FeatureSpec::default());
        assert_eq!(m.dim(), 0, "100-distinct categorical must be dropped");
    }

    #[test]
    fn small_int_columns_become_categorical() {
        let schema = Schema::new(vec![Field::new("bucket", DataType::Int)]);
        let rows = (0..30).map(|i| vec![Value::Int(i % 3)]).collect();
        let t = Table::from_rows(schema, rows).unwrap();
        let m = extract_features(&t, &[], FeatureSpec::default());
        assert_eq!(m.dim(), 3);
    }

    #[test]
    fn nulls_get_own_category_and_mean_fill() {
        let schema = Schema::new(vec![
            Field::nullable("x", DataType::Float),
            Field::nullable("c", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::Float(1.0), Value::from("a")],
            vec![Value::Null, Value::Null],
            vec![Value::Float(3.0), Value::from("a")],
        ];
        let t = Table::from_rows(schema, rows).unwrap();
        let m = extract_features(&t, &[], FeatureSpec::default());
        // x numeric (1) + c one-hot {a, NULL} (2).
        assert_eq!(m.dim(), 3);
        // NULL numeric row should sit at the (standardized) mean: 0.
        assert_eq!(m.row(1)[0], 0.0);
    }
}
