//! Feature extraction from tables.
//!
//! The virtual-column method and the ML baselines (paper §4.4, §6.2,
//! §6.3.2) need numeric feature vectors. Following the paper's own
//! overfitting guard — "we only use columns that are either numeric or
//! nominal with < 50 different values" — this module standardizes numeric
//! columns and one-hot encodes low-cardinality categorical columns.
//!
//! One-hot encoding consumes dictionary codes from the grouping kernel
//! ([`expred_table::GroupCodes`]): per row it costs an integer lookup,
//! and the category strings are rendered once per *distinct* value
//! rather than once per cell. The historical per-cell-`String` encoder
//! is kept as [`extract_features_reference`], and the kernel path is
//! unit-tested to match it byte for byte (the dictionary's value-sorted
//! codes are remapped to the reference's string-sorted category slots).

use expred_table::kernels::GroupCodes;
use expred_table::{Column, DataType, DerivedCache, Table, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Feature-extraction policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureSpec {
    /// Categorical columns with more distinct values than this are dropped
    /// (the paper uses 50).
    pub max_categorical_cardinality: usize,
    /// Integer columns with at most this many distinct values are treated
    /// as categorical rather than numeric.
    pub int_categorical_threshold: usize,
}

impl Default for FeatureSpec {
    fn default() -> Self {
        Self {
            max_categorical_cardinality: 50,
            int_categorical_threshold: 20,
        }
    }
}

/// A dense row-major feature matrix with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    rows: usize,
    dim: usize,
    data: Vec<f64>,
    feature_names: Vec<String>,
}

impl FeatureMatrix {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of features per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The feature vector of one row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// Human-readable feature names (column or column=value).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }
}

/// Extracts standardized/one-hot features from every eligible column of
/// `table` except those in `exclude`.
///
/// * Float columns (and high-cardinality Int columns) are standardized to
///   zero mean / unit variance; NULLs map to the mean (0 after
///   standardization).
/// * Str/Bool columns (and low-cardinality Int columns) are one-hot
///   encoded; NULL becomes its own category. Columns whose cardinality
///   exceeds the spec's limit are dropped.
pub fn extract_features(table: &Table, exclude: &[&str], spec: FeatureSpec) -> FeatureMatrix {
    extract_features_cached(table, exclude, spec, None)
}

/// [`extract_features`] with an optional session [`DerivedCache`]: the
/// per-column dictionary codes behind the one-hot encodings are served
/// from (and populated into) the cache, keyed by `(table id, version,
/// column)`, so repeat extractions over an unchanged table skip the
/// dictionary build entirely. Output is identical with or without the
/// cache.
pub fn extract_features_cached(
    table: &Table,
    exclude: &[&str],
    spec: FeatureSpec,
    derived: Option<&DerivedCache>,
) -> FeatureMatrix {
    let n = table.num_rows();
    let mut columns: Vec<(String, Encoding)> = Vec::new();
    for field in table.schema().fields() {
        if exclude.contains(&field.name()) {
            continue;
        }
        let col = table.column(field.name()).expect("schema-listed column");
        let categorical = |name: &str| {
            let codes = match derived {
                Some(cache) => cache
                    .group_codes(table, name)
                    .expect("schema-listed column"),
                None => Arc::new(col.group_codes()),
            };
            coded_encoding(codes, spec.max_categorical_cardinality)
        };
        let enc = match field.data_type() {
            DataType::Float => numeric_encoding(col, n),
            DataType::Int => {
                // Memoized on the table: eligibility stops re-scanning.
                let distinct = table
                    .column_stats(field.name())
                    .expect("schema-listed column")
                    .distinct_count;
                if distinct <= spec.int_categorical_threshold {
                    categorical(field.name())
                } else {
                    numeric_encoding(col, n)
                }
            }
            DataType::Bool | DataType::Str => categorical(field.name()),
        };
        if let Some(enc) = enc {
            columns.push((field.name().to_owned(), enc));
        }
    }

    let dim: usize = columns.iter().map(|(_, e)| e.width()).sum();
    let mut data = vec![0.0; n * dim];
    let mut feature_names = Vec::with_capacity(dim);
    let mut offset = 0;
    for (name, enc) in &columns {
        match enc {
            Encoding::Numeric { mean, std } => {
                feature_names.push(name.clone());
                let col = table.column(name).unwrap();
                for r in 0..n {
                    let v = col.float_at(r).unwrap_or(*mean);
                    data[r * dim + offset] = if *std > 0.0 { (v - mean) / std } else { 0.0 };
                }
                offset += 1;
            }
            Encoding::OneHot {
                names,
                codes,
                code_slot,
            } => {
                for cat in names {
                    feature_names.push(format!("{name}={cat}"));
                }
                for (r, &code) in codes.codes().iter().enumerate() {
                    data[r * dim + offset + code_slot[code as usize]] = 1.0;
                }
                offset += names.len();
            }
        }
    }
    debug_assert_eq!(offset, dim);
    FeatureMatrix {
        rows: n,
        dim,
        data,
        feature_names,
    }
}

enum Encoding {
    Numeric {
        mean: f64,
        std: f64,
    },
    /// One-hot over kernel dictionary codes: `code_slot[code]` is the
    /// column slot (categories in string-sorted order, matching the
    /// reference encoder), `names` the sorted category strings.
    OneHot {
        names: Vec<String>,
        codes: Arc<GroupCodes>,
        code_slot: Vec<usize>,
    },
}

impl Encoding {
    fn width(&self) -> usize {
        match self {
            Encoding::Numeric { .. } => 1,
            Encoding::OneHot { names, .. } => names.len(),
        }
    }
}

fn numeric_encoding(col: &Column, n: usize) -> Option<Encoding> {
    let mut acc = expred_stats::descriptive::Accumulator::new();
    for r in 0..n {
        if let Some(v) = col.float_at(r) {
            acc.push(v);
        }
    }
    Some(Encoding::Numeric {
        mean: acc.mean(),
        std: acc.std_dev(),
    })
}

/// Builds the one-hot layout from dictionary codes. The dictionary is
/// value-sorted; the reference encoder sorts categories by their
/// *rendered string*, so each distinct key is rendered once (not once
/// per cell) and the codes are remapped to string-sorted slots. Distinct
/// keys with equal renderings collapse into one category, exactly as the
/// string-keyed reference would.
fn coded_encoding(codes: Arc<GroupCodes>, max_card: usize) -> Option<Encoding> {
    let rendered: Vec<String> = codes.keys().iter().map(key_string).collect();
    let mut sorted: BTreeMap<&str, usize> = BTreeMap::new();
    for key in &rendered {
        let next = sorted.len();
        sorted.entry(key).or_insert(next);
        if sorted.len() > max_card {
            return None; // too many distinct values: drop the column
        }
    }
    // Re-index in sorted order; map each code to its category's slot.
    for (slot, (_, index)) in sorted.iter_mut().enumerate() {
        *index = slot;
    }
    let code_slot: Vec<usize> = rendered.iter().map(|k| sorted[k.as_str()]).collect();
    let names: Vec<String> = sorted.keys().map(|k| (*k).to_owned()).collect();
    Some(Encoding::OneHot {
        names,
        codes,
        code_slot,
    })
}

/// The rendering the string-keyed reference encoder uses for a cell.
fn key_string(v: &Value) -> String {
    if v.is_null() {
        "\u{0}NULL".to_owned()
    } else {
        v.to_string()
    }
}

/// The historical per-cell scalar encoder: renders an owned key `String`
/// per cell and buckets through a `BTreeMap`. Kept as the reference the
/// kernel-coded path is tested (and benched) against; output is byte-
/// identical to [`extract_features`].
pub fn extract_features_reference(
    table: &Table,
    exclude: &[&str],
    spec: FeatureSpec,
) -> FeatureMatrix {
    let n = table.num_rows();
    let mut columns: Vec<(String, ReferenceEncoding)> = Vec::new();
    for field in table.schema().fields() {
        if exclude.contains(&field.name()) {
            continue;
        }
        let col = table.column(field.name()).expect("schema-listed column");
        let enc = match field.data_type() {
            DataType::Float => reference_numeric(col, n),
            DataType::Int => {
                if col.distinct_count() <= spec.int_categorical_threshold {
                    reference_categorical(col, n, spec.max_categorical_cardinality)
                } else {
                    reference_numeric(col, n)
                }
            }
            DataType::Bool | DataType::Str => {
                reference_categorical(col, n, spec.max_categorical_cardinality)
            }
        };
        if let Some(enc) = enc {
            columns.push((field.name().to_owned(), enc));
        }
    }

    let dim: usize = columns.iter().map(|(_, e)| e.width()).sum();
    let mut data = vec![0.0; n * dim];
    let mut feature_names = Vec::with_capacity(dim);
    let mut offset = 0;
    for (name, enc) in &columns {
        match enc {
            ReferenceEncoding::Numeric { mean, std } => {
                feature_names.push(name.clone());
                let col = table.column(name).unwrap();
                for r in 0..n {
                    let v = col.float_at(r).unwrap_or(*mean);
                    data[r * dim + offset] = if *std > 0.0 { (v - mean) / std } else { 0.0 };
                }
                offset += 1;
            }
            ReferenceEncoding::OneHot { categories } => {
                for cat in categories.keys() {
                    feature_names.push(format!("{name}={cat}"));
                }
                let col = table.column(name).unwrap();
                for r in 0..n {
                    let key = cell_key(col, r);
                    if let Some(&slot) = categories.get(&key) {
                        data[r * dim + offset + slot] = 1.0;
                    }
                }
                offset += categories.len();
            }
        }
    }
    debug_assert_eq!(offset, dim);
    FeatureMatrix {
        rows: n,
        dim,
        data,
        feature_names,
    }
}

enum ReferenceEncoding {
    Numeric { mean: f64, std: f64 },
    OneHot { categories: BTreeMap<String, usize> },
}

impl ReferenceEncoding {
    fn width(&self) -> usize {
        match self {
            ReferenceEncoding::Numeric { .. } => 1,
            ReferenceEncoding::OneHot { categories } => categories.len(),
        }
    }
}

fn reference_numeric(col: &Column, n: usize) -> Option<ReferenceEncoding> {
    match numeric_encoding(col, n) {
        Some(Encoding::Numeric { mean, std }) => Some(ReferenceEncoding::Numeric { mean, std }),
        _ => None,
    }
}

fn reference_categorical(col: &Column, n: usize, max_card: usize) -> Option<ReferenceEncoding> {
    let mut categories: BTreeMap<String, usize> = BTreeMap::new();
    for r in 0..n {
        let key = cell_key(col, r);
        let next = categories.len();
        categories.entry(key).or_insert(next);
        if categories.len() > max_card {
            return None; // too many distinct values: drop the column
        }
    }
    // Re-index in sorted order for determinism.
    let keys: Vec<String> = categories.keys().cloned().collect();
    let categories = keys.into_iter().enumerate().map(|(i, k)| (k, i)).collect();
    Some(ReferenceEncoding::OneHot { categories })
}

fn cell_key(col: &Column, r: usize) -> String {
    let v = col.value(r);
    if v.is_null() {
        "\u{0}NULL".to_owned()
    } else {
        v.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use expred_table::{Field, Schema, Value};

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("income", DataType::Float),
            Field::new("grade", DataType::Str),
            Field::new("flag", DataType::Bool),
            Field::new("id", DataType::Int),
            Field::new("label", DataType::Bool),
        ]);
        let rows = vec![
            vec![
                Value::Float(10.0),
                Value::from("A"),
                Value::Bool(true),
                Value::Int(0),
                Value::Bool(true),
            ],
            vec![
                Value::Float(20.0),
                Value::from("B"),
                Value::Bool(false),
                Value::Int(1),
                Value::Bool(false),
            ],
            vec![
                Value::Float(30.0),
                Value::from("A"),
                Value::Bool(true),
                Value::Int(2),
                Value::Bool(true),
            ],
            vec![
                Value::Float(40.0),
                Value::from("C"),
                Value::Bool(false),
                Value::Int(3),
                Value::Bool(false),
            ],
        ];
        Table::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn excludes_and_encodes() {
        let t = sample_table();
        let m = extract_features(&t, &["label", "id"], FeatureSpec::default());
        assert_eq!(m.rows(), 4);
        // income (1) + grade one-hot (3) + flag one-hot (2) = 6.
        assert_eq!(m.dim(), 6);
        assert!(m.feature_names().contains(&"income".to_owned()));
        assert!(m.feature_names().contains(&"grade=A".to_owned()));
        assert!(m.feature_names().iter().all(|n| !n.starts_with("label")));
    }

    #[test]
    fn numeric_standardization() {
        let t = sample_table();
        let m = extract_features(
            &t,
            &["label", "id", "grade", "flag"],
            FeatureSpec::default(),
        );
        assert_eq!(m.dim(), 1);
        let mean: f64 = (0..4).map(|r| m.row(r)[0]).sum::<f64>() / 4.0;
        let var: f64 = (0..4).map(|r| m.row(r)[0].powi(2)).sum::<f64>() / 4.0 - mean * mean;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn one_hot_rows_sum_to_one_per_column() {
        let t = sample_table();
        let m = extract_features(
            &t,
            &["label", "id", "income", "flag"],
            FeatureSpec::default(),
        );
        // grade one-hot only: each row has exactly one hot slot.
        assert_eq!(m.dim(), 3);
        for r in 0..4 {
            let s: f64 = m.row(r).iter().sum();
            assert_eq!(s, 1.0);
        }
    }

    #[test]
    fn high_cardinality_categoricals_dropped() {
        let schema = Schema::new(vec![Field::new("s", DataType::Str)]);
        let rows = (0..100)
            .map(|i| vec![Value::Str(format!("v{i}"))])
            .collect();
        let t = Table::from_rows(schema, rows).unwrap();
        let m = extract_features(&t, &[], FeatureSpec::default());
        assert_eq!(m.dim(), 0, "100-distinct categorical must be dropped");
    }

    #[test]
    fn small_int_columns_become_categorical() {
        let schema = Schema::new(vec![Field::new("bucket", DataType::Int)]);
        let rows = (0..30).map(|i| vec![Value::Int(i % 3)]).collect();
        let t = Table::from_rows(schema, rows).unwrap();
        let m = extract_features(&t, &[], FeatureSpec::default());
        assert_eq!(m.dim(), 3);
    }

    /// The kernel-coded encoder must reproduce the string-keyed reference
    /// byte for byte — including the tricky orderings: string-sorted
    /// categories (`Int(10)` sorts before `Int(2)` as "10" < "2") and the
    /// `"\u{0}NULL"` NULL category sorting first.
    #[test]
    fn coded_encoding_matches_reference_byte_for_byte() {
        let schema = Schema::new(vec![
            Field::nullable("bucket", DataType::Int),
            Field::nullable("grade", DataType::Str),
            Field::nullable("flag", DataType::Bool),
            Field::nullable("x", DataType::Float),
        ]);
        let rows = (0..60)
            .map(|i| {
                vec![
                    // Includes 2 vs 10: value order differs from string order.
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int([2, 10, 1, -3][i % 4])
                    },
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::from(["B", "A", "C"][i % 3])
                    },
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::Bool(i % 2 == 0)
                    },
                    Value::Float(i as f64 * 0.5),
                ]
            })
            .collect();
        let t = Table::from_rows(schema, rows).unwrap();
        let spec = FeatureSpec::default();
        let kernel = extract_features(&t, &[], spec);
        let reference = extract_features_reference(&t, &[], spec);
        assert_eq!(kernel, reference);
        assert!(kernel
            .feature_names()
            .iter()
            .any(|n| n == "bucket=\u{0}NULL"));

        // And through the derived cache: identical again, with the codes
        // dictionaries now retained for reuse.
        let cache = expred_table::DerivedCache::new();
        let cached = extract_features_cached(&t, &[], spec, Some(&cache));
        assert_eq!(cached, reference);
        assert!(cache.stats().misses >= 1);
        let again = extract_features_cached(&t, &[], spec, Some(&cache));
        assert_eq!(again, reference);
        assert!(cache.stats().hits >= 1, "repeat extraction reuses codes");
    }

    #[test]
    fn nulls_get_own_category_and_mean_fill() {
        let schema = Schema::new(vec![
            Field::nullable("x", DataType::Float),
            Field::nullable("c", DataType::Str),
        ]);
        let rows = vec![
            vec![Value::Float(1.0), Value::from("a")],
            vec![Value::Null, Value::Null],
            vec![Value::Float(3.0), Value::from("a")],
        ];
        let t = Table::from_rows(schema, rows).unwrap();
        let m = extract_features(&t, &[], FeatureSpec::default());
        // x numeric (1) + c one-hot {a, NULL} (2).
        assert_eq!(m.dim(), 3);
        // NULL numeric row should sit at the (standardized) mean: 0.
        assert_eq!(m.row(1)[0], 0.0);
    }
}
