//! The paper's two machine-learning baselines (§6.2).
//!
//! * **Learning** (semi-supervised self-training): evaluate a labelled
//!   seed, train a classifier, optionally absorb confident pseudo-labels
//!   and retrain, then "return the tuples that originally evaluated to
//!   true as well as those estimated to be true".
//! * **Multiple** (multiple imputations): instead of thresholding the
//!   class probabilities, draw several imputed completions of the
//!   unlabelled tuples from those probabilities; constraints are then
//!   checked *on average across the imputed datasets*.

use crate::features::FeatureMatrix;
use crate::logistic::{train, LogisticModel, TrainConfig};
use expred_stats::rng::Prng;

/// Configuration for self-training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfTrainConfig {
    /// Total training rounds (1 = plain supervised training).
    pub rounds: usize,
    /// Pseudo-label confidence threshold: unlabelled rows with predicted
    /// probability ≥ this (or ≤ 1−this) join the training set.
    pub confidence: f64,
    /// Underlying logistic-regression hyperparameters.
    pub train: TrainConfig,
}

impl Default for SelfTrainConfig {
    fn default() -> Self {
        Self {
            rounds: 2,
            confidence: 0.9,
            train: TrainConfig::default(),
        }
    }
}

/// Output of a self-training run.
#[derive(Debug, Clone)]
pub struct SelfTrainOutcome {
    /// The final trained model.
    pub model: LogisticModel,
    /// Predicted probability for every row of the feature matrix.
    pub probabilities: Vec<f64>,
}

/// Runs self-training from a labelled seed.
///
/// `labelled` are row indices with known `labels`; all remaining feature
/// rows are treated as unlabelled.
pub fn self_train(
    features: &FeatureMatrix,
    labelled: &[usize],
    labels: &[bool],
    config: SelfTrainConfig,
) -> SelfTrainOutcome {
    assert_eq!(labelled.len(), labels.len());
    assert!(config.rounds >= 1, "need at least one training round");
    let labelled_set: std::collections::HashSet<usize> = labelled.iter().copied().collect();

    let mut train_rows: Vec<usize> = labelled.to_vec();
    let mut train_labels: Vec<bool> = labels.to_vec();
    let mut model = train(features, &train_rows, &train_labels, config.train);

    for _ in 1..config.rounds {
        // Absorb confident pseudo-labels from the unlabelled pool.
        train_rows = labelled.to_vec();
        train_labels = labels.to_vec();
        for r in 0..features.rows() {
            if labelled_set.contains(&r) {
                continue;
            }
            let p = model.predict(features.row(r));
            if p >= config.confidence {
                train_rows.push(r);
                train_labels.push(true);
            } else if p <= 1.0 - config.confidence {
                train_rows.push(r);
                train_labels.push(false);
            }
        }
        model = train(features, &train_rows, &train_labels, config.train);
    }

    let probabilities = model.predict_all(features);
    SelfTrainOutcome {
        model,
        probabilities,
    }
}

/// The returned set of the **Learning** baseline: rows whose evaluated
/// label was true, plus unlabelled rows predicted true.
pub fn learning_returned_set(
    outcome: &SelfTrainOutcome,
    labelled: &[usize],
    labels: &[bool],
) -> Vec<usize> {
    let labelled_set: std::collections::HashSet<usize> = labelled.iter().copied().collect();
    let mut out: Vec<usize> = labelled
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&r, _)| r)
        .collect();
    for (r, &p) in outcome.probabilities.iter().enumerate() {
        if !labelled_set.contains(&r) && p > 0.5 {
            out.push(r);
        }
    }
    out.sort_unstable();
    out
}

/// One imputed completion: evaluated labels stay fixed, unlabelled rows get
/// labels drawn from their predicted probabilities.
pub fn impute(
    outcome: &SelfTrainOutcome,
    labelled: &[usize],
    labels: &[bool],
    rng: &mut Prng,
) -> Vec<bool> {
    let mut imputed: Vec<bool> = outcome
        .probabilities
        .iter()
        .map(|&p| rng.bernoulli(p))
        .collect();
    for (&r, &l) in labelled.iter().zip(labels) {
        imputed[r] = l;
    }
    imputed
}

/// Draws `count` independent imputations (the **Multiple** baseline).
pub fn multiple_imputations(
    outcome: &SelfTrainOutcome,
    labelled: &[usize],
    labels: &[bool],
    count: usize,
    rng: &mut Prng,
) -> Vec<Vec<bool>> {
    (0..count)
        .map(|i| {
            let mut child = rng.fork(i as u64);
            impute(outcome, labelled, labels, &mut child)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{extract_features, FeatureSpec};
    use expred_table::{DataType, Field, Schema, Table, Value};

    /// 200 rows, signal x separates the classes with a little noise.
    fn noisy_problem() -> (FeatureMatrix, Vec<bool>) {
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..200 {
            let x = (i as f64 - 99.5) / 20.0;
            rows.push(vec![Value::Float(x)]);
            // Deterministic "noise": a band near the boundary flips.
            let label = if i % 37 == 0 { x <= 0.0 } else { x > 0.0 };
            truth.push(label);
        }
        let table = Table::from_rows(schema, rows).unwrap();
        (extract_features(&table, &[], FeatureSpec::default()), truth)
    }

    #[test]
    fn self_training_improves_or_matches_seed_coverage() {
        let (features, truth) = noisy_problem();
        // Seed: every 10th row labelled.
        let labelled: Vec<usize> = (0..200).step_by(10).collect();
        let labels: Vec<bool> = labelled.iter().map(|&r| truth[r]).collect();
        let outcome = self_train(&features, &labelled, &labels, SelfTrainConfig::default());
        let correct = (0..200)
            .filter(|&r| (outcome.probabilities[r] > 0.5) == truth[r])
            .count();
        assert!(correct >= 175, "self-training accuracy {correct}/200");
    }

    #[test]
    fn returned_set_includes_evaluated_trues() {
        let (features, truth) = noisy_problem();
        let labelled: Vec<usize> = vec![0, 5, 150, 199];
        let labels: Vec<bool> = labelled.iter().map(|&r| truth[r]).collect();
        let outcome = self_train(&features, &labelled, &labels, SelfTrainConfig::default());
        let returned = learning_returned_set(&outcome, &labelled, &labels);
        for (&r, &l) in labelled.iter().zip(&labels) {
            assert_eq!(returned.contains(&r), l, "row {r}");
        }
    }

    #[test]
    fn imputations_respect_evaluated_labels() {
        let (features, truth) = noisy_problem();
        let labelled: Vec<usize> = (0..200).step_by(7).collect();
        let labels: Vec<bool> = labelled.iter().map(|&r| truth[r]).collect();
        let outcome = self_train(&features, &labelled, &labels, SelfTrainConfig::default());
        let mut rng = Prng::seeded(3);
        let imputations = multiple_imputations(&outcome, &labelled, &labels, 5, &mut rng);
        assert_eq!(imputations.len(), 5);
        for imp in &imputations {
            for (&r, &l) in labelled.iter().zip(&labels) {
                assert_eq!(imp[r], l, "labelled rows must keep their labels");
            }
        }
    }

    #[test]
    fn imputations_vary_on_uncertain_rows() {
        let (features, truth) = noisy_problem();
        let labelled: Vec<usize> = (0..200).step_by(50).collect();
        let labels: Vec<bool> = labelled.iter().map(|&r| truth[r]).collect();
        let outcome = self_train(&features, &labelled, &labels, SelfTrainConfig::default());
        let mut rng = Prng::seeded(4);
        let imputations = multiple_imputations(&outcome, &labelled, &labels, 8, &mut rng);
        let differing = (0..200).any(|r| {
            let first = imputations[0][r];
            imputations.iter().any(|imp| imp[r] != first)
        });
        assert!(differing, "independent imputations should not be identical");
    }

    #[test]
    fn single_round_is_plain_supervised() {
        let (features, truth) = noisy_problem();
        let labelled: Vec<usize> = (0..200).step_by(4).collect();
        let labels: Vec<bool> = labelled.iter().map(|&r| truth[r]).collect();
        let one = self_train(
            &features,
            &labelled,
            &labels,
            SelfTrainConfig {
                rounds: 1,
                ..SelfTrainConfig::default()
            },
        );
        let direct = crate::logistic::train(&features, &labelled, &labels, TrainConfig::default());
        assert_eq!(one.model, direct);
    }
}
