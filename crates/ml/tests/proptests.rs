//! Property tests for the ML substrate.

use expred_ml::features::{extract_features, FeatureSpec};
use expred_ml::logistic::{train, TrainConfig};
use expred_ml::metrics::{precision_recall, precision_recall_mask};
use expred_table::{DataType, Field, Schema, Table, Value};
use proptest::prelude::*;

fn table_from(xs: &[f64]) -> Table {
    let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
    let rows = xs.iter().map(|&x| vec![Value::Float(x)]).collect();
    Table::from_rows(schema, rows).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn predictions_are_probabilities(
        xs in prop::collection::vec(-100.0f64..100.0, 4..100),
        flips in prop::collection::vec(any::<bool>(), 4..100),
    ) {
        let n = xs.len().min(flips.len());
        let table = table_from(&xs[..n]);
        let features = extract_features(&table, &[], FeatureSpec::default());
        let rows: Vec<usize> = (0..n).collect();
        let model = train(&features, &rows, &flips[..n], TrainConfig::default());
        for r in 0..n {
            let p = model.predict(features.row(r));
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }

    #[test]
    fn separable_data_learned_reliably(boundary in -5.0f64..5.0, seed_shift in 0.5f64..3.0) {
        let xs: Vec<f64> = (0..80).map(|i| boundary + (i as f64 - 39.5) * seed_shift / 10.0).collect();
        let labels: Vec<bool> = xs.iter().map(|&x| x > boundary).collect();
        let table = table_from(&xs);
        let features = extract_features(&table, &[], FeatureSpec::default());
        let rows: Vec<usize> = (0..xs.len()).collect();
        let model = train(&features, &rows, &labels, TrainConfig::default());
        let correct = rows
            .iter()
            .filter(|&&r| (model.predict(features.row(r)) > 0.5) == labels[r])
            .count();
        prop_assert!(correct >= 76, "accuracy {correct}/80");
    }

    #[test]
    fn precision_recall_bounds(truth in prop::collection::vec(any::<bool>(), 1..120), mask in prop::collection::vec(any::<bool>(), 1..120)) {
        let n = truth.len().min(mask.len());
        let s = precision_recall_mask(&mask[..n], &truth[..n]);
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!((0.0..=1.0).contains(&s.f1()));
        prop_assert!(s.true_positives <= s.returned);
        prop_assert!(s.true_positives <= s.total_correct || s.total_correct == 0);
    }

    #[test]
    fn perfect_prediction_gives_perfect_metrics(truth in prop::collection::vec(any::<bool>(), 1..120)) {
        let returned: Vec<usize> = truth
            .iter()
            .enumerate()
            .filter(|(_, &t)| t)
            .map(|(i, _)| i)
            .collect();
        let s = precision_recall(&returned, &truth);
        prop_assert_eq!(s.precision, 1.0);
        prop_assert_eq!(s.recall, 1.0);
    }
}
