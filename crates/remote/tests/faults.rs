//! The remote backend's proof obligation, under fire.
//!
//! For *arbitrary* seeded fault schedules — drops, corrupt frames,
//! mid-response disconnects, latency tails — a query served by the
//! remote backend must be indistinguishable from one served by a local
//! [`Sequential`] reference on the same oracle:
//!
//! 1. **byte-identical answers**, landed by input index, and
//! 2. **exact bill conservation**: the paper-model `o_e` is charged
//!    once per fresh row no matter how many wire attempts the probe
//!    took; retries and hedges appear only in the wire *ledger*.
//!
//! Plus the wedge test: a black-holed endpoint must trip the circuit
//! breaker and degrade (typed error or local fallback) in bounded wall
//! time instead of hanging the `WorkerPool`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use expred_exec::{InFlightWindow, Sequential, WorkerPool};
use expred_remote::{
    BreakerConfig, BreakerState, ClientConfig, FaultPlan, HedgeConfig, OracleMap, RemoteClient,
    RemoteUdf, UdfServer,
};
use expred_table::{DataType, Field, Schema, Table, Value};
use expred_udf::{CostModel, CostTracker, OracleUdf, UdfInvoker};
use proptest::prelude::*;

fn table_with_labels(labels: &[bool]) -> Table {
    let schema = Schema::new(vec![
        Field::new("x", DataType::Int),
        Field::new("good", DataType::Bool),
    ]);
    let rows = labels
        .iter()
        .enumerate()
        .map(|(i, &l)| vec![Value::Int(i as i64), Value::Bool(l)])
        .collect();
    Table::from_rows(schema, rows).unwrap()
}

fn serve_labels(labels: &[bool], plan: FaultPlan) -> UdfServer {
    let mut oracles = OracleMap::new();
    oracles.insert("good".to_string(), Arc::new(labels.to_vec()));
    UdfServer::bind("127.0.0.1:0", oracles, plan).unwrap()
}

/// An arbitrary-but-bounded fault schedule: individually modest
/// probabilities so a generous retry budget always gets through, plus
/// short latency tails so the suite stays fast.
#[derive(Debug, Clone)]
struct Schedule {
    seed: u64,
    drop_probability: f64,
    corrupt_probability: f64,
    disconnect_probability: f64,
    tail_probability: f64,
    tail_ms: u64,
}

impl Schedule {
    fn plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            drop_probability: self.drop_probability,
            corrupt_probability: self.corrupt_probability,
            disconnect_probability: self.disconnect_probability,
            tail_probability: self.tail_probability,
            tail_delay: Duration::from_millis(self.tail_ms),
            ..FaultPlan::healthy()
        }
    }

    fn is_faulty(&self) -> bool {
        self.drop_probability > 0.0
            || self.corrupt_probability > 0.0
            || self.disconnect_probability > 0.0
    }
}

fn schedules() -> impl Strategy<Value = Schedule> {
    (
        any::<u64>(),
        0.0..0.2f64,
        0.0..0.1f64,
        0.0..0.1f64,
        0.0..0.3f64,
        0u64..20,
    )
        .prop_map(
            |(
                seed,
                drop_probability,
                corrupt_probability,
                disconnect_probability,
                tail_probability,
                tail_ms,
            )| {
                Schedule {
                    seed,
                    drop_probability,
                    corrupt_probability,
                    disconnect_probability,
                    tail_probability,
                    tail_ms,
                }
            },
        )
}

/// Labels plus a row set over them (duplicates and shuffles included);
/// raw indices are folded into range so the two parts stay independent.
fn workload() -> impl Strategy<Value = (Vec<bool>, Vec<usize>)> {
    (
        prop::collection::vec(any::<bool>(), 4..28),
        prop::collection::vec(0usize..1024, 1..40),
    )
        .prop_map(|(labels, raw)| {
            let n = labels.len();
            let rows = raw.into_iter().map(|r| r % n).collect();
            (labels, rows)
        })
}

/// A retry budget deep enough that a bounded schedule cannot exhaust it
/// (worst per-attempt failure probability here is ~0.4; 0.4^13 ≈ 7e-6).
fn resilient_config(server: &UdfServer) -> ClientConfig {
    let mut config = ClientConfig::new(server.addr().to_string());
    config.connections = 4;
    config.attempt_timeout = Duration::from_millis(150);
    config.max_retries = 12;
    config.backoff_base = Duration::from_millis(2);
    config.backoff_cap = Duration::from_millis(40);
    config.hedge = None;
    config.breaker = BreakerConfig {
        failure_threshold: u32::MAX,
        cooldown: Duration::from_millis(100),
    };
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The tentpole proof: answers and bills are conserved under every
    // injected fault schedule.
    #[test]
    fn remote_conserves_answers_and_bills_under_faults(
        schedule in schedules(),
        (labels, rows) in workload(),
    ) {
        let server = serve_labels(&labels, schedule.plan());
        let table = table_with_labels(&labels);

        // Local reference: Sequential executor over the hidden column.
        let local_udf = OracleUdf::new("good");
        let local_invoker = UdfInvoker::new(&local_udf, &table);
        let expected = local_invoker.evaluate_batch(&Sequential, &rows);

        // Remote: same rows through the audited invoker over a pooled,
        // retrying client with an in-flight window.
        let tracker = CostTracker::new();
        let client = Arc::new(
            RemoteClient::new(resilient_config(&server)).with_tracker(tracker.clone()),
        );
        let remote_udf = RemoteUdf::new(Arc::clone(&client), "good");
        let remote_invoker = UdfInvoker::with_tracker(&remote_udf, &table, tracker.clone());
        let got = remote_invoker.evaluate_batch(&InFlightWindow::new(4), &rows);

        prop_assert_eq!(&got, &expected, "answers diverged under {:?}", schedule);

        // Exact bill conservation: same evaluations, same paper cost.
        let local_counts = local_invoker.counts();
        let remote_counts = remote_invoker.counts();
        prop_assert_eq!(remote_counts.evaluated, local_counts.evaluated);
        let model = CostModel::PAPER_DEFAULT;
        prop_assert_eq!(
            remote_counts.cost(&model).to_bits(),
            local_counts.cost(&model).to_bits(),
            "wire faults must never change the bill"
        );

        // Retries/hedges are a ledger: recorded, never billed.
        let stats = client.stats();
        prop_assert_eq!(tracker.snapshot().retries, stats.retries);
        prop_assert_eq!(tracker.snapshot().hedges, stats.hedges);
        if schedule.is_faulty() {
            // With any fault probability the wire MAY have retried; the
            // bill above already proved retries were free either way.
            prop_assert!(stats.requests as usize >= 1);
        }
    }
}

/// A deterministic heavy-drop schedule must visibly exercise the retry
/// path and still conserve the bill.
#[test]
fn heavy_drops_force_retries_that_never_bill() {
    let labels: Vec<bool> = (0..16).map(|i| i % 3 == 0).collect();
    let plan = FaultPlan {
        seed: 1234,
        drop_probability: 0.5,
        ..FaultPlan::healthy()
    };
    let server = serve_labels(&labels, plan);
    let table = table_with_labels(&labels);

    let local_udf = OracleUdf::new("good");
    let local_invoker = UdfInvoker::new(&local_udf, &table);
    let rows: Vec<usize> = (0..labels.len()).collect();
    let expected = local_invoker.evaluate_batch(&Sequential, &rows);

    let mut config = resilient_config(&server);
    config.attempt_timeout = Duration::from_millis(80);
    let tracker = CostTracker::new();
    let client = Arc::new(RemoteClient::new(config).with_tracker(tracker.clone()));
    let remote_udf = RemoteUdf::new(Arc::clone(&client), "good");
    let remote_invoker = UdfInvoker::with_tracker(&remote_udf, &table, tracker.clone());
    let got = remote_invoker.evaluate_batch(&InFlightWindow::new(4), &rows);

    assert_eq!(got, expected);
    let stats = client.stats();
    assert!(stats.retries > 0, "50% drops must force retries: {stats:?}");
    let counts = tracker.snapshot();
    assert_eq!(counts.retries, stats.retries, "ledger mirrors the wire");
    assert_eq!(
        counts.evaluated,
        local_invoker.counts().evaluated,
        "o_e billed once per fresh row despite {} retries",
        stats.retries
    );
}

/// Hedges fire on latency tails, win some races, and bill nothing.
#[test]
fn hedges_cut_tails_and_never_bill() {
    let labels: Vec<bool> = (0..48).map(|i| i % 2 == 0).collect();
    let plan = FaultPlan::jittered_tail(77, Duration::ZERO, 0.3, Duration::from_millis(250));
    let server = serve_labels(&labels, plan);
    let table = table_with_labels(&labels);

    let mut config = ClientConfig::new(server.addr().to_string());
    config.connections = 4;
    config.attempt_timeout = Duration::from_secs(3);
    config.max_retries = 0;
    config.hedge = Some(HedgeConfig {
        initial_delay: Duration::from_millis(25),
        min_samples: usize::MAX, // pin the hedge delay for determinism
    });
    let tracker = CostTracker::new();
    let client = Arc::new(RemoteClient::new(config).with_tracker(tracker.clone()));
    let remote_udf = RemoteUdf::new(Arc::clone(&client), "good");
    let remote_invoker = UdfInvoker::with_tracker(&remote_udf, &table, tracker.clone());
    let rows: Vec<usize> = (0..labels.len()).collect();
    let got = remote_invoker.evaluate_batch(&InFlightWindow::new(4), &rows);

    let expected: Vec<bool> = rows.iter().map(|&r| labels[r]).collect();
    assert_eq!(got, expected);
    let stats = client.stats();
    assert!(
        stats.hedges > 0,
        "30% × 250ms tails must trigger hedges: {stats:?}"
    );
    let counts = tracker.snapshot();
    assert_eq!(counts.hedges, stats.hedges, "hedge ledger mirrors the wire");
    assert_eq!(
        counts.evaluated as usize,
        labels.len(),
        "first-answer-wins bills once: {stats:?}"
    );
}

/// The wedge test: a black-holed endpoint trips the breaker and the
/// query degrades to the local fallback in bounded wall time — the
/// `WorkerPool` never hangs.
#[test]
fn blackout_trips_breaker_and_does_not_wedge_the_pool() {
    let labels: Vec<bool> = (0..64).map(|i| i % 5 == 0).collect();
    let server = serve_labels(&labels, FaultPlan::blackout());
    let table = table_with_labels(&labels);

    let mut config = ClientConfig::new(server.addr().to_string());
    config.attempt_timeout = Duration::from_millis(60);
    config.max_retries = 0;
    config.hedge = None;
    config.breaker = BreakerConfig {
        failure_threshold: 3,
        cooldown: Duration::from_secs(60),
    };
    let client = Arc::new(RemoteClient::new(config));
    let remote_udf =
        RemoteUdf::new(Arc::clone(&client), "good").with_fallback(Box::new(OracleUdf::new("good")));

    let pool = WorkerPool::with_threads(4);
    let invoker = UdfInvoker::new(&remote_udf, &table);
    let rows: Vec<usize> = (0..labels.len()).collect();
    let started = Instant::now();
    let got = invoker.evaluate_batch(&pool, &rows);
    let elapsed = started.elapsed();

    let expected: Vec<bool> = rows.iter().map(|&r| labels[r]).collect();
    assert_eq!(got, expected, "fallback answers must match the oracle");
    // 64 rows × 60ms deadline serially would be ~3.8s; once the breaker
    // opens every remaining probe fails fast to the fallback.
    assert!(
        elapsed < Duration::from_secs(3),
        "pool wedged for {elapsed:?} against a black-holed endpoint"
    );
    assert_eq!(client.breaker_state(), BreakerState::Open);
    let stats = client.stats();
    assert!(stats.breaker_opens >= 1, "{stats:?}");
    assert!(stats.breaker_rejections > 0, "{stats:?}");
    assert_eq!(stats.fallback_local as usize, labels.len());
}

/// Without a fallback, the same blackout surfaces as the typed
/// `Unavailable` engine error through the fallible batch surface.
#[test]
fn blackout_without_fallback_maps_to_engine_unavailable() {
    let labels = vec![true; 8];
    let server = serve_labels(&labels, FaultPlan::blackout());
    let table = table_with_labels(&labels);

    let mut config = ClientConfig::new(server.addr().to_string());
    config.attempt_timeout = Duration::from_millis(50);
    config.max_retries = 0;
    config.hedge = None;
    config.breaker = BreakerConfig {
        failure_threshold: 1,
        cooldown: Duration::from_secs(60),
    };
    let remote_udf = RemoteUdf::new(Arc::new(RemoteClient::new(config)), "good");
    let rows: Vec<usize> = (0..labels.len()).collect();
    let err = remote_udf.try_evaluate_batch(&table, &rows, 4).unwrap_err();
    let engine_err: expred_core::EngineError = err.into();
    match engine_err {
        expred_core::EngineError::Unavailable { endpoint, .. } => {
            assert_eq!(endpoint, server.addr().to_string());
        }
        other => panic!("expected Unavailable, got {other:?}"),
    }
}

/// Identical fault schedules replay identically: the whole suite is
/// rerunnable from a seed.
#[test]
fn fault_schedules_replay_deterministically() {
    let labels: Vec<bool> = (0..12).map(|i| i % 2 == 0).collect();
    let plan = FaultPlan {
        seed: 5150,
        drop_probability: 0.3,
        corrupt_probability: 0.1,
        ..FaultPlan::healthy()
    };
    let run = || {
        let server = serve_labels(&labels, plan.clone());
        let mut config = resilient_config(&server);
        config.connections = 1; // one connection → one fault stream
        let client = RemoteClient::new(config);
        let answers: Vec<bool> = (0..labels.len() as u64)
            .map(|row| client.probe("good", row).unwrap())
            .collect();
        (answers, client.stats().retries)
    };
    let (answers_a, retries_a) = run();
    let (answers_b, retries_b) = run();
    assert_eq!(answers_a, answers_b);
    assert_eq!(
        retries_a, retries_b,
        "same plan + same access pattern must replay the same wire history"
    );
}
