//! Deterministic fault injection for the UDF server.
//!
//! Every failure mode a real network oracle exhibits, as a seeded,
//! reproducible schedule: the proof obligation for the remote backend is
//! byte-identical answers and exact bill conservation *under every
//! injected fault schedule*, and that is only a provable statement if
//! the schedule is a pure function of `(plan seed, connection index,
//! request index)` — rerunning a failing seed replays the exact faults.
//!
//! A [`FaultPlan`] describes the probabilities and magnitudes; each
//! accepted connection derives its own [`FaultInjector`] whose decisions
//! come from a private SplitMix64 stream. Knobs:
//!
//! * **latency**: fixed base delay, per-request ramp, and a jittered
//!   tail (`tail_probability` of an extra `tail_delay` — the classic
//!   "1% of requests stall 100ms" shape hedging exists to cut);
//! * **drops**: the request is read and silently never answered (the
//!   client's per-attempt deadline is the only way out);
//! * **corrupt frames**: the response goes out with a wrong length
//!   prefix (the client must treat the connection as poisoned);
//! * **mid-response disconnects**: half a response, then FIN;
//! * **blackout**: accept connections, answer nothing, forever — the
//!   circuit-breaker wedge scenario.

use std::time::Duration;

/// What the server should do with one response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponseFate {
    /// Write the response normally.
    Respond,
    /// Read the request, answer nothing (client times out).
    Drop,
    /// Write a frame whose length prefix lies about the body length.
    CorruptLength,
    /// Write half the response bytes, then close the connection.
    TruncateAndClose,
}

/// One request's injected faults: wait `delay`, then apply `fate`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultDecision {
    /// Injected latency before any response bytes are written.
    pub delay: Duration,
    /// How the response is (mis)delivered.
    pub fate: ResponseFate,
}

/// A seeded description of how a server misbehaves.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every derived decision stream.
    pub seed: u64,
    /// Latency added to every response.
    pub base_delay: Duration,
    /// Extra latency added per request served on a connection
    /// (`ramp_per_request * request_index`) — models a degrading backend.
    pub ramp_per_request: Duration,
    /// Probability a response additionally stalls for `tail_delay`.
    pub tail_probability: f64,
    /// The stall added to tail-struck responses.
    pub tail_delay: Duration,
    /// Probability a request is read but never answered.
    pub drop_probability: f64,
    /// Probability a response frame goes out with a corrupt length.
    pub corrupt_probability: f64,
    /// Probability the connection closes mid-response.
    pub disconnect_probability: f64,
    /// Answer nothing at all, ever (overrides everything else).
    pub blackout: bool,
}

impl FaultPlan {
    /// A perfectly healthy server.
    pub fn healthy() -> Self {
        Self {
            seed: 0,
            base_delay: Duration::ZERO,
            ramp_per_request: Duration::ZERO,
            tail_probability: 0.0,
            tail_delay: Duration::ZERO,
            drop_probability: 0.0,
            corrupt_probability: 0.0,
            disconnect_probability: 0.0,
            blackout: false,
        }
    }

    /// A server that accepts connections and never answers.
    pub fn blackout() -> Self {
        Self {
            blackout: true,
            ..Self::healthy()
        }
    }

    /// The "slow tail" shape hedged requests exist for: `probability` of
    /// requests stall an extra `stall` on top of `base`.
    pub fn jittered_tail(seed: u64, base: Duration, probability: f64, stall: Duration) -> Self {
        Self {
            seed,
            base_delay: base,
            tail_probability: probability,
            tail_delay: stall,
            ..Self::healthy()
        }
    }

    /// Validates that every probability is a probability.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("tail_probability", self.tail_probability),
            ("drop_probability", self.drop_probability),
            ("corrupt_probability", self.corrupt_probability),
            ("disconnect_probability", self.disconnect_probability),
        ] {
            if !(0.0..=1.0).contains(&p) || p.is_nan() {
                return Err(format!("{name} = {p} is not in [0, 1]"));
            }
        }
        Ok(())
    }

    /// The injector for connection number `connection` under this plan.
    pub fn injector(&self, connection: u64) -> FaultInjector {
        FaultInjector {
            plan: self.clone(),
            // Decouple the per-connection streams: two connections under
            // one plan see different (but individually deterministic)
            // schedules, like real networks.
            state: splitmix(self.seed ^ connection.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            served: 0,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::healthy()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One connection's deterministic fault stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
    served: u64,
}

impl FaultInjector {
    fn next_unit(&mut self) -> f64 {
        self.state = splitmix(self.state);
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the whole connection is blacked out.
    pub fn blackout(&self) -> bool {
        self.plan.blackout
    }

    /// Decides the fate of the next request on this connection.
    ///
    /// Exactly four unit draws per request regardless of which branch
    /// wins, so one decision never shifts the stream of the next — the
    /// schedule for request *k* depends only on `(seed, connection, k)`.
    #[allow(clippy::should_implement_trait)] // infinite, infallible — not an Iterator
    pub fn next(&mut self) -> FaultDecision {
        let request_index = self.served;
        self.served += 1;
        let tail = self.next_unit();
        let drop = self.next_unit();
        let corrupt = self.next_unit();
        let disconnect = self.next_unit();

        let mut delay = self.plan.base_delay + self.plan.ramp_per_request * request_index as u32;
        if tail < self.plan.tail_probability {
            delay += self.plan.tail_delay;
        }
        let fate = if drop < self.plan.drop_probability {
            ResponseFate::Drop
        } else if corrupt < self.plan.corrupt_probability {
            ResponseFate::CorruptLength
        } else if disconnect < self.plan.disconnect_probability {
            ResponseFate::TruncateAndClose
        } else {
            ResponseFate::Respond
        };
        FaultDecision { delay, fate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_plan_always_responds_instantly() {
        let mut injector = FaultPlan::healthy().injector(0);
        for _ in 0..64 {
            let d = injector.next();
            assert_eq!(d.delay, Duration::ZERO);
            assert_eq!(d.fate, ResponseFate::Respond);
        }
    }

    #[test]
    fn schedules_are_deterministic_per_connection() {
        let plan = FaultPlan {
            seed: 99,
            drop_probability: 0.3,
            corrupt_probability: 0.2,
            disconnect_probability: 0.2,
            tail_probability: 0.5,
            tail_delay: Duration::from_millis(10),
            ..FaultPlan::healthy()
        };
        let a: Vec<FaultDecision> = {
            let mut i = plan.injector(3);
            (0..50).map(|_| i.next()).collect()
        };
        let b: Vec<FaultDecision> = {
            let mut i = plan.injector(3);
            (0..50).map(|_| i.next()).collect()
        };
        assert_eq!(a, b, "same (plan, connection) replays the same schedule");
        let c: Vec<FaultDecision> = {
            let mut i = plan.injector(4);
            (0..50).map(|_| i.next()).collect()
        };
        assert_ne!(a, c, "different connections see different schedules");
    }

    #[test]
    fn ramp_grows_with_request_index_and_tail_stalls_strike() {
        let plan = FaultPlan {
            seed: 1,
            base_delay: Duration::from_millis(1),
            ramp_per_request: Duration::from_millis(2),
            tail_probability: 1.0,
            tail_delay: Duration::from_millis(100),
            ..FaultPlan::healthy()
        };
        let mut injector = plan.injector(0);
        assert_eq!(injector.next().delay, Duration::from_millis(101));
        assert_eq!(injector.next().delay, Duration::from_millis(103));
        assert_eq!(injector.next().delay, Duration::from_millis(105));
    }

    #[test]
    fn fault_rates_track_probabilities() {
        let plan = FaultPlan {
            seed: 7,
            drop_probability: 0.25,
            ..FaultPlan::healthy()
        };
        let mut injector = plan.injector(0);
        let drops = (0..4000)
            .filter(|_| injector.next().fate == ResponseFate::Drop)
            .count();
        let rate = drops as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate = {rate}");
    }

    #[test]
    fn validate_rejects_non_probabilities() {
        assert!(FaultPlan::healthy().validate().is_ok());
        let bad = FaultPlan {
            drop_probability: 1.5,
            ..FaultPlan::healthy()
        };
        assert!(bad.validate().unwrap_err().contains("drop_probability"));
        let nan = FaultPlan {
            tail_probability: f64::NAN,
            ..FaultPlan::healthy()
        };
        assert!(nan.validate().is_err());
    }

    #[test]
    fn blackout_overrides() {
        assert!(FaultPlan::blackout().injector(0).blackout());
        assert!(!FaultPlan::healthy().injector(0).blackout());
    }
}
