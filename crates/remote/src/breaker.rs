//! Per-endpoint circuit breaker: closed → open → half-open.
//!
//! Retries and deadlines protect one probe; the breaker protects the
//! *query* (and the `WorkerPool` threads running it) from an endpoint
//! that has stopped answering entirely. Without it, a black-holed server
//! costs every probe its full deadline × retry budget — a 5 s request
//! becomes a multi-minute hang. With it, the first few failures pay that
//! price, the breaker opens, and every subsequent probe fails fast (or
//! falls back to a local evaluator) until a cooldown elapses; then one
//! half-open trial probe is let through to test recovery.
//!
//! The state machine is a single `AtomicU64` packing `(state, epoch)` so
//! admission checks on the probe hot path are one load, and the
//! open→half-open transition race (many probes noticing the cooldown
//! expired at once) is settled by one CAS — exactly one caller wins the
//! trial slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const STATE_CLOSED: u64 = 0;
const STATE_OPEN: u64 = 1;
const STATE_HALF_OPEN: u64 = 2;

/// Observable breaker state, for metrics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all probes admitted.
    Closed,
    /// Tripped: all probes rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial probe is in flight.
    HalfOpen,
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a trial probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// What the breaker says about one probe attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proceed (closed, or you won the half-open trial slot).
    Admitted,
    /// Fail fast: the breaker is open (or another probe holds the trial).
    Rejected,
}

/// A closed → open → half-open circuit breaker.
///
/// Thread-safe; one instance guards one endpoint.
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: AtomicU64,
    consecutive_failures: AtomicU64,
    /// When the breaker last opened; only read under the state machine's
    /// transition paths, guarded by a mutex because `Instant` isn't atomic.
    opened_at: Mutex<Option<Instant>>,
    opens: AtomicU64,
    rejections: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: AtomicU64::new(STATE_CLOSED),
            consecutive_failures: AtomicU64::new(0),
            opened_at: Mutex::new(None),
            opens: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
        }
    }

    /// The current state, for metrics and tests.
    pub fn state(&self) -> BreakerState {
        match self.state.load(Ordering::SeqCst) {
            STATE_OPEN => BreakerState::Open,
            STATE_HALF_OPEN => BreakerState::HalfOpen,
            _ => BreakerState::Closed,
        }
    }

    /// Times the breaker has tripped open.
    pub fn opens(&self) -> u64 {
        self.opens.load(Ordering::Relaxed)
    }

    /// Probes rejected fast by an open breaker.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// Asks whether a probe may proceed. Call [`Self::record_success`] or
    /// [`Self::record_failure`] with the outcome of every admitted probe.
    pub fn admit(&self) -> Admission {
        match self.state.load(Ordering::SeqCst) {
            STATE_CLOSED => Admission::Admitted,
            STATE_HALF_OPEN => {
                // A trial probe is already in flight; don't pile on.
                self.rejections.fetch_add(1, Ordering::Relaxed);
                Admission::Rejected
            }
            _open => {
                let cooled = {
                    let opened = self.opened_at.lock().unwrap();
                    opened
                        .map(|t| t.elapsed() >= self.config.cooldown)
                        .unwrap_or(true)
                };
                if cooled
                    && self
                        .state
                        .compare_exchange(
                            STATE_OPEN,
                            STATE_HALF_OPEN,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                {
                    // This caller won the single half-open trial slot.
                    Admission::Admitted
                } else {
                    self.rejections.fetch_add(1, Ordering::Relaxed);
                    Admission::Rejected
                }
            }
        }
    }

    /// Reports that an admitted probe succeeded.
    pub fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        // A successful half-open trial (or any success) closes the breaker.
        self.state.store(STATE_CLOSED, Ordering::SeqCst);
    }

    /// Reports that an admitted probe exhausted its retries and failed.
    pub fn record_failure(&self) {
        let failures = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        let currently = self.state.load(Ordering::SeqCst);
        let should_open = currently == STATE_HALF_OPEN
            || (currently == STATE_CLOSED && failures >= self.config.failure_threshold as u64);
        if should_open {
            *self.opened_at.lock().unwrap() = Some(Instant::now());
            let prev = self.state.swap(STATE_OPEN, Ordering::SeqCst);
            if prev != STATE_OPEN {
                self.opens.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
        })
    }

    #[test]
    fn stays_closed_under_success_and_scattered_failures() {
        let b = quick();
        for _ in 0..10 {
            assert_eq!(b.admit(), Admission::Admitted);
            b.record_failure();
            assert_eq!(b.admit(), Admission::Admitted);
            b.record_success(); // resets the consecutive counter
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.opens(), 0);
    }

    #[test]
    fn consecutive_failures_trip_it_and_rejections_fail_fast() {
        let b = quick();
        for _ in 0..3 {
            assert_eq!(b.admit(), Admission::Admitted);
            b.record_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
        assert_eq!(b.admit(), Admission::Rejected);
        assert_eq!(b.admit(), Admission::Rejected);
        assert_eq!(b.rejections(), 2);
    }

    #[test]
    fn half_open_admits_exactly_one_trial_then_closes_on_success() {
        let b = quick();
        for _ in 0..3 {
            b.admit();
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit(), Admission::Admitted, "trial probe after cooldown");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), Admission::Rejected, "only one trial at a time");
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.admit(), Admission::Admitted);
    }

    #[test]
    fn failed_trial_reopens_immediately() {
        let b = quick();
        for _ in 0..3 {
            b.admit();
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit(), Admission::Admitted);
        b.record_failure(); // one failure in half-open: straight back to open
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 2);
        assert_eq!(b.admit(), Admission::Rejected, "cooldown restarts");
    }

    #[test]
    fn trial_race_admits_exactly_one_thread() {
        use std::sync::atomic::AtomicUsize;
        let b = std::sync::Arc::new(quick());
        for _ in 0..3 {
            b.admit();
            b.record_failure();
        }
        std::thread::sleep(Duration::from_millis(25));
        let admitted = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    if b.admit() == Admission::Admitted {
                        admitted.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(admitted.load(Ordering::SeqCst), 1);
    }
}
