//! Fault-tolerant remote UDF backend.
//!
//! The paper's expensive predicates are, in production, rarely local
//! function calls: they are crowdsourcing tasks, model-serving
//! endpoints, entity-resolution services — things on the other side of
//! a network that stalls, drops, corrupts, and dies. This crate makes
//! the engine's UDF abstraction survive that, without changing what
//! the engine sees: a [`RemoteUdf`] is just a `BooleanUdf`, and the
//! proof obligation (enforced by the `tests/faults.rs` suite) is that
//! under *every* injected fault schedule it returns byte-identical
//! answers to a local oracle and bills the paper-model `o_e` exactly
//! once per row — retries and hedges are a wire-level ledger, never a
//! second bill.
//!
//! Layout:
//!
//! * [`proto`] — the length-prefixed TCP wire protocol (requests carry
//!   a client-chosen id echoed back, enabling pipelined out-of-order
//!   responses and hedge cancellation-by-deregistration);
//! * [`server`] — the bundled std-only oracle server (also built as
//!   the `expred-udf-server` binary) with a per-connection,
//!   deterministically seeded fault-injection layer;
//! * [`fault`] — the [`FaultPlan`] / [`FaultInjector`] knobs: fixed and
//!   ramped latency, jittered tails, probabilistic drops, wrong-length
//!   frames, mid-response disconnects, full blackouts;
//! * [`client`] — [`RemoteClient`]: connection pool, per-probe
//!   deadlines, bounded exponential-backoff retries, hedged requests
//!   after a p99-derived delay, and a per-endpoint circuit breaker;
//! * [`breaker`] — the closed → open → half-open state machine;
//! * [`udf`] — [`RemoteUdf`], the `BooleanUdf` adapter with an
//!   optional local fallback evaluator and a typed-error batch surface
//!   (`try_evaluate_batch`) that degrades to
//!   `EngineError::Unavailable` → HTTP 503 in the serving tier.

pub mod breaker;
pub mod client;
pub mod fault;
pub mod proto;
pub mod server;
pub mod udf;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use client::{
    ClientConfig, HedgeConfig, RemoteClient, RemoteError, RemoteStats, RemoteStatsSnapshot,
};
pub use fault::{FaultDecision, FaultInjector, FaultPlan, ResponseFate};
pub use server::{OracleMap, UdfServer};
pub use udf::RemoteUdf;
