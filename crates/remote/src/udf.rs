//! [`RemoteUdf`]: a [`BooleanUdf`] whose expensive call is a network
//! round-trip.
//!
//! This is where the remote backend meets the engine's existing
//! contract. A `RemoteUdf` plugs into everything a local UDF does —
//! the `UdfInvoker` (which bills `o_e` exactly once per fresh row, no
//! matter how many wire retries the probe took underneath), the
//! executors in `expred-exec` (an [`InFlightWindow`] over a remote UDF
//! keeps `window` probes on the wire at once), and the predicate
//! expression tree.
//!
//! Failure policy, in order:
//!
//! 1. the [`RemoteClient`] burns its full deadline/retry/hedge budget;
//! 2. if a **local fallback evaluator** was configured, the probe
//!    degrades to it (counted in `fallback_local`) and the query
//!    completes with local answers;
//! 3. otherwise the typed error surfaces through
//!    [`RemoteUdf::try_evaluate`] / [`RemoteUdf::try_evaluate_batch`]
//!    (and from there maps to
//!    [`EngineError::Unavailable`] → HTTP 503). The infallible
//!    [`BooleanUdf::evaluate`] has no error channel, so with no
//!    fallback it panics — callers on the fallible surface should use
//!    the `try_*` methods.
//!
//! [`InFlightWindow`]: expred_exec::InFlightWindow
//! [`EngineError::Unavailable`]: expred_core::EngineError::Unavailable

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use expred_table::Table;
use expred_udf::{BooleanUdf, UdfId};

use crate::client::{RemoteClient, RemoteError};

/// A boolean UDF evaluated by a remote oracle server.
pub struct RemoteUdf {
    client: Arc<RemoteClient>,
    oracle: String,
    fallback: Option<Box<dyn BooleanUdf>>,
}

impl RemoteUdf {
    /// A remote UDF probing `oracle` through `client`, with no local
    /// fallback: unavailability is a typed error (or a panic on the
    /// infallible path).
    pub fn new(client: Arc<RemoteClient>, oracle: impl Into<String>) -> Self {
        Self {
            client,
            oracle: oracle.into(),
            fallback: None,
        }
    }

    /// Degrades to `fallback` when the endpoint is unavailable, instead
    /// of erroring: the query completes with locally computed answers
    /// and the degradation shows up in the `fallback_local` counter.
    pub fn with_fallback(mut self, fallback: Box<dyn BooleanUdf>) -> Self {
        self.fallback = Some(fallback);
        self
    }

    /// The oracle name this UDF probes.
    pub fn oracle(&self) -> &str {
        &self.oracle
    }

    /// Evaluates one row with a typed error channel. Infrastructure
    /// failures (breaker open, deadline exhausted) consult the fallback
    /// first; request bugs (unknown oracle) never do — a wrong oracle
    /// name should fail loudly, not silently compute something else.
    pub fn try_evaluate(&self, table: &Table, row: usize) -> Result<bool, RemoteError> {
        match self.client.probe(&self.oracle, row as u64) {
            Ok(answer) => Ok(answer),
            Err(e @ (RemoteError::CircuitOpen { .. } | RemoteError::DeadlineExhausted { .. })) => {
                match &self.fallback {
                    Some(local) => {
                        self.client.note_fallback();
                        Ok(local.evaluate(table, row))
                    }
                    None => Err(e),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Evaluates `rows` with up to `window` probes in flight at once,
    /// landing answers by input index. The first infrastructure error
    /// (after the fallback had its chance) aborts the remaining work —
    /// there is no point burning `len × deadline` against a dead
    /// endpoint — and is returned; answers computed so far are dropped.
    ///
    /// This is the typed-error sibling of running an
    /// [`InFlightWindow`](expred_exec::InFlightWindow) executor over
    /// [`BooleanUdf::evaluate`]: same scheduling, same out-of-order
    /// completion, but unavailability is a `Result`, not a panic.
    pub fn try_evaluate_batch(
        &self,
        table: &Table,
        rows: &[usize],
        window: usize,
    ) -> Result<Vec<bool>, RemoteError> {
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        let workers = window.clamp(1, rows.len());
        if workers == 1 {
            let mut answers = Vec::with_capacity(rows.len());
            for &row in rows {
                answers.push(self.try_evaluate(table, row)?);
            }
            return Ok(answers);
        }

        let cursor = AtomicUsize::new(0);
        let abort = AtomicBool::new(false);
        // (slot, error) of the earliest-slot failure, for a
        // deterministic error regardless of thread interleaving.
        let first_error: Mutex<Option<(usize, RemoteError)>> = Mutex::new(None);
        let mut answers = vec![false; rows.len()];

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let mut local: Vec<(usize, bool)> = Vec::new();
                    loop {
                        if abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        if slot >= rows.len() {
                            break;
                        }
                        match self.try_evaluate(table, rows[slot]) {
                            Ok(answer) => local.push((slot, answer)),
                            Err(e) => {
                                let mut guard = first_error.lock().unwrap();
                                if guard.as_ref().map(|(s, _)| slot < *s).unwrap_or(true) {
                                    *guard = Some((slot, e));
                                }
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                    local
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(local) => {
                        for (slot, answer) in local {
                            answers[slot] = answer;
                        }
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        match first_error.into_inner().unwrap() {
            Some((_, e)) => Err(e),
            None => Ok(answers),
        }
    }
}

impl BooleanUdf for RemoteUdf {
    /// The infallible surface: panics on unavailability with no
    /// fallback. Engine paths that can report errors should go through
    /// [`RemoteUdf::try_evaluate`] instead.
    fn evaluate(&self, table: &Table, row: usize) -> bool {
        self.try_evaluate(table, row).unwrap_or_else(|e| {
            panic!(
                "remote UDF {:?} failed with no local fallback: {e}",
                self.oracle
            )
        })
    }

    fn name(&self) -> &str {
        "remote"
    }

    /// Identity is the oracle name: two clients probing the same named
    /// oracle (even via different endpoints) answer identically, so
    /// they share a cache namespace; the fallback does not participate
    /// (it is an availability detail, not a semantic one — it is the
    /// caller's obligation to supply a fallback that agrees with the
    /// remote oracle).
    fn fingerprint(&self) -> Option<UdfId> {
        Some(UdfId::from_parts(
            "remote",
            &[UdfId::str_part(&self.oracle)],
        ))
    }

    fn required_columns(&self) -> Vec<String> {
        match &self.fallback {
            Some(local) => local.required_columns(),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;
    use crate::client::ClientConfig;
    use crate::fault::FaultPlan;
    use crate::server::{OracleMap, UdfServer};
    use expred_table::{DataType, Field, Schema, Value};
    use expred_udf::OracleUdf;
    use std::time::Duration;

    fn table_with_labels(labels: &[bool]) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("good", DataType::Bool),
        ]);
        let rows = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| vec![Value::Int(i as i64), Value::Bool(l)])
            .collect();
        Table::from_rows(schema, rows).unwrap()
    }

    fn serve_labels(labels: &[bool], plan: FaultPlan) -> (UdfServer, Arc<RemoteClient>) {
        let mut oracles = OracleMap::new();
        oracles.insert("good".to_string(), Arc::new(labels.to_vec()));
        let server = UdfServer::bind("127.0.0.1:0", oracles, plan).unwrap();
        let client = Arc::new(RemoteClient::new(ClientConfig::new(
            server.addr().to_string(),
        )));
        (server, client)
    }

    #[test]
    fn remote_matches_local_oracle_row_by_row() {
        let labels = [true, false, false, true, true, false];
        let (_server, client) = serve_labels(&labels, FaultPlan::healthy());
        let table = table_with_labels(&labels);
        let remote = RemoteUdf::new(client, "good");
        let local = OracleUdf::new("good");
        for row in 0..labels.len() {
            assert_eq!(remote.evaluate(&table, row), local.evaluate(&table, row));
        }
    }

    #[test]
    fn batch_lands_answers_by_input_index() {
        let labels = [true, false, true, false, true, false, true, false];
        let (_server, client) = serve_labels(&labels, FaultPlan::healthy());
        let table = table_with_labels(&labels);
        let remote = RemoteUdf::new(client, "good");
        // Shuffled, repeated rows: answers must land by slot.
        let rows = [7usize, 0, 3, 3, 6, 1, 2, 5, 4, 0];
        let answers = remote.try_evaluate_batch(&table, &rows, 4).unwrap();
        let expected: Vec<bool> = rows.iter().map(|&r| labels[r]).collect();
        assert_eq!(answers, expected);
        assert!(remote
            .try_evaluate_batch(&table, &[], 4)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unavailable_with_fallback_degrades_locally() {
        let labels = [true, false, true];
        let (_server, client) = serve_labels(&labels, FaultPlan::blackout());
        let table = table_with_labels(&labels);
        let mut config = ClientConfig::new(client.endpoint().to_string());
        config.attempt_timeout = Duration::from_millis(50);
        config.max_retries = 0;
        config.hedge = None;
        let client = Arc::new(RemoteClient::new(config));
        let remote = RemoteUdf::new(Arc::clone(&client), "good")
            .with_fallback(Box::new(OracleUdf::new("good")));
        for (row, &expected) in labels.iter().enumerate() {
            assert_eq!(remote.try_evaluate(&table, row).unwrap(), expected);
        }
        assert_eq!(client.stats().fallback_local, 3);
    }

    #[test]
    fn unavailable_without_fallback_is_a_typed_error_and_batch_aborts_early() {
        let labels = [true; 32];
        let (_server, _healthy) = serve_labels(&labels, FaultPlan::healthy());
        // A client aimed at a blackout server, tight budget, fast breaker.
        let mut oracles = OracleMap::new();
        oracles.insert("good".to_string(), Arc::new(labels.to_vec()));
        let dark = UdfServer::bind("127.0.0.1:0", oracles, FaultPlan::blackout()).unwrap();
        let mut config = ClientConfig::new(dark.addr().to_string());
        config.attempt_timeout = Duration::from_millis(50);
        config.max_retries = 0;
        config.hedge = None;
        config.breaker = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(60),
        };
        let remote = RemoteUdf::new(Arc::new(RemoteClient::new(config)), "good");
        let table = table_with_labels(&labels);
        let started = std::time::Instant::now();
        let err = remote
            .try_evaluate_batch(&table, &(0..32).collect::<Vec<_>>(), 4)
            .unwrap_err();
        assert!(
            matches!(
                err,
                RemoteError::DeadlineExhausted { .. } | RemoteError::CircuitOpen { .. }
            ),
            "{err:?}"
        );
        // 32 rows × 50ms deadline would be 1.6s serial; early abort plus
        // the breaker must finish far sooner.
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "batch against a dead endpoint took {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn unknown_oracle_never_consults_the_fallback() {
        let labels = [true, true];
        let (_server, client) = serve_labels(&labels, FaultPlan::healthy());
        let table = table_with_labels(&labels);
        let remote = RemoteUdf::new(Arc::clone(&client), "wrong-name")
            .with_fallback(Box::new(OracleUdf::new("good")));
        assert!(matches!(
            remote.try_evaluate(&table, 0),
            Err(RemoteError::UnknownOracle { .. })
        ));
        assert_eq!(client.stats().fallback_local, 0);
    }

    #[test]
    fn fingerprint_is_the_oracle_name() {
        let (_server, client) = serve_labels(&[true], FaultPlan::healthy());
        let a = RemoteUdf::new(Arc::clone(&client), "good");
        let b = RemoteUdf::new(Arc::clone(&client), "good");
        let c = RemoteUdf::new(client, "other");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert!(a.fingerprint().is_some());
    }
}
