//! The fault-tolerant remote UDF client.
//!
//! [`RemoteClient`] turns "evaluate oracle O on row R" into a blocking
//! call that survives everything the fault harness throws at the wire:
//!
//! * **connection pool** — a fixed set of lazily-dialed connections;
//!   probes are spread round-robin, and a connection that dies (EOF,
//!   corrupt frame, write error) is marked poisoned and redialed on
//!   next use;
//! * **pipelined demux** — each connection has one reader thread that
//!   routes responses to waiters by echoed request id, so many probes
//!   share a connection with out-of-order completion;
//! * **deadline + retry** — every attempt has a timeout; failed
//!   attempts are retried with bounded exponential backoff and
//!   deterministic jitter, each retry under a fresh request id (a late
//!   answer to a dead id is simply discarded);
//! * **hedging** — after a delay derived from the observed p99 latency,
//!   a duplicate request goes out on a *different* connection and the
//!   first answer wins; the loser's id is deregistered, so its eventual
//!   answer (if any) is dropped on the floor;
//! * **circuit breaker** — consecutive probe failures open a
//!   per-endpoint breaker; while open, probes fail fast with
//!   [`RemoteError::CircuitOpen`] instead of each paying the full
//!   deadline × retry budget.
//!
//! Billing is *not* done here: the client counts wire work (requests,
//! retries, hedges, timeouts) in [`RemoteStats`] and mirrors the
//! retry/hedge ledger into an optional shared
//! [`CostTracker`], but the paper-model `o_e`
//! bill is charged exactly once per row by the `UdfInvoker` above this
//! layer, no matter how many wire attempts a probe took.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use expred_udf::CostTracker;

use crate::breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
use crate::proto::{
    read_frame, write_frame, ProtoError, Request, Response, STATUS_OK, STATUS_UNKNOWN_ORACLE,
};

/// How often a reader thread wakes from a blocking read to check for
/// client shutdown.
const READER_POLL: Duration = Duration::from_millis(50);

/// How many recent attempt latencies feed the hedge-delay percentile.
const LATENCY_WINDOW: usize = 256;

/// Hedged-request tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HedgeConfig {
    /// Hedge delay used until `min_samples` latencies are observed.
    pub initial_delay: Duration,
    /// Observed-latency samples required before the delay switches to
    /// the p99-derived value.
    pub min_samples: usize,
}

impl Default for HedgeConfig {
    fn default() -> Self {
        Self {
            initial_delay: Duration::from_millis(50),
            min_samples: 32,
        }
    }
}

/// Client tuning.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// `host:port` of the UDF server.
    pub endpoint: String,
    /// Pool size; also the natural in-flight window for batch callers.
    pub connections: usize,
    /// Dial timeout for one connection attempt.
    pub connect_timeout: Duration,
    /// Deadline for one attempt of one probe.
    pub attempt_timeout: Duration,
    /// Extra attempts after the first (0 = never retry).
    pub max_retries: u32,
    /// First backoff sleep; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Hedging policy; `None` disables hedged requests.
    pub hedge: Option<HedgeConfig>,
    /// Circuit-breaker tuning.
    pub breaker: BreakerConfig,
}

impl ClientConfig {
    /// Sensible defaults for a loopback test server.
    pub fn new(endpoint: impl Into<String>) -> Self {
        Self {
            endpoint: endpoint.into(),
            connections: 4,
            connect_timeout: Duration::from_millis(500),
            attempt_timeout: Duration::from_millis(500),
            max_retries: 3,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            hedge: Some(HedgeConfig::default()),
            breaker: BreakerConfig::default(),
        }
    }
}

/// Why a probe (after all retries) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteError {
    /// The circuit breaker is open: the endpoint is considered down and
    /// the probe failed fast without touching the wire.
    CircuitOpen {
        /// The guarded endpoint.
        endpoint: String,
    },
    /// Every attempt timed out or died in transport.
    DeadlineExhausted {
        /// The endpoint that never answered.
        endpoint: String,
        /// Attempts made (1 + retries).
        attempts: u32,
    },
    /// The server does not know the named oracle. Not retried: the
    /// server answered, the request is simply wrong.
    UnknownOracle {
        /// The name the server rejected.
        oracle: String,
    },
    /// The server rejected the request (row out of range, undecodable).
    BadRequest {
        /// The endpoint that rejected it.
        endpoint: String,
    },
}

impl std::fmt::Display for RemoteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemoteError::CircuitOpen { endpoint } => {
                write!(f, "circuit breaker open for {endpoint}")
            }
            RemoteError::DeadlineExhausted { endpoint, attempts } => {
                write!(f, "{endpoint} did not answer within {attempts} attempts")
            }
            RemoteError::UnknownOracle { oracle } => {
                write!(f, "remote server has no oracle named {oracle:?}")
            }
            RemoteError::BadRequest { endpoint } => {
                write!(f, "{endpoint} rejected the probe as malformed")
            }
        }
    }
}

impl std::error::Error for RemoteError {}

/// Remote failures enter the engine's error space as `Unavailable`
/// (infrastructure, retryable → 503) or `InvalidRequest` (caller bug).
impl From<RemoteError> for expred_core::EngineError {
    fn from(e: RemoteError) -> Self {
        match e {
            RemoteError::CircuitOpen { endpoint } => expred_core::EngineError::Unavailable {
                endpoint,
                reason: "circuit breaker open".into(),
            },
            RemoteError::DeadlineExhausted { endpoint, attempts } => {
                expred_core::EngineError::Unavailable {
                    endpoint,
                    reason: format!("no answer within {attempts} attempts"),
                }
            }
            RemoteError::UnknownOracle { oracle } => expred_core::EngineError::InvalidRequest {
                reason: format!("remote server has no oracle named {oracle:?}"),
            },
            RemoteError::BadRequest { endpoint } => expred_core::EngineError::InvalidRequest {
                reason: format!("remote server {endpoint} rejected the probe as malformed"),
            },
        }
    }
}

/// Wire-level counters, exported through `GET /metrics` by the serving
/// tier via the same `fields()` snapshot pattern as `CostCounts`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteStatsSnapshot {
    /// Probes issued (not counting retries/hedges).
    pub requests: u64,
    /// Extra attempts after a timeout or transport failure.
    pub retries: u64,
    /// Speculative duplicate requests sent.
    pub hedges: u64,
    /// Hedges whose answer arrived before the primary's.
    pub hedge_wins: u64,
    /// Attempts that hit their per-attempt deadline.
    pub timeouts: u64,
    /// Attempts that died in transport (connect/write/reader poison).
    pub transport_errors: u64,
    /// Successful (re)dials of pool connections.
    pub reconnects: u64,
    /// Times the circuit breaker tripped open.
    pub breaker_opens: u64,
    /// Probes failed fast by an open breaker.
    pub breaker_rejections: u64,
    /// Probes answered by the caller-supplied local fallback evaluator.
    pub fallback_local: u64,
}

impl RemoteStatsSnapshot {
    /// Stable `(name, value)` pairs for the metrics endpoint.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requests", self.requests),
            ("retries", self.retries),
            ("hedges", self.hedges),
            ("hedge_wins", self.hedge_wins),
            ("timeouts", self.timeouts),
            ("transport_errors", self.transport_errors),
            ("reconnects", self.reconnects),
            ("breaker_opens", self.breaker_opens),
            ("breaker_rejections", self.breaker_rejections),
            ("fallback_local", self.fallback_local),
        ]
    }
}

/// Shared atomic counters behind [`RemoteStatsSnapshot`].
#[derive(Debug, Default)]
pub struct RemoteStats {
    requests: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    timeouts: AtomicU64,
    transport_errors: AtomicU64,
    reconnects: AtomicU64,
    fallback_local: AtomicU64,
}

impl RemoteStats {
    pub(crate) fn note_fallback(&self) {
        self.fallback_local.fetch_add(1, Ordering::Relaxed);
    }
}

/// A waiter for one logical probe; hedges register a second id pointing
/// at the same cell, and whichever response lands first wins.
struct WaitCell {
    slot: Mutex<Option<(u64, Response)>>,
    ready: Condvar,
}

impl WaitCell {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfill(&self, id: u64, response: Response) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some((id, response));
            self.ready.notify_all();
        }
    }

    /// Waits until fulfilled or `deadline`; returns `(winning_id, response)`.
    fn wait_until(&self, deadline: Instant) -> Option<(u64, Response)> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(found) = *slot {
                return Some(found);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timeout) = self.ready.wait_timeout(slot, deadline - now).unwrap();
            slot = next;
            if timeout.timed_out() && slot.is_none() {
                return None;
            }
        }
    }
}

type WaiterMap = Mutex<HashMap<u64, Arc<WaitCell>>>;

/// One pooled connection: a locked writer plus a detached reader thread
/// that demultiplexes responses into the shared waiter map.
struct Conn {
    writer: Mutex<BufWriter<TcpStream>>,
    alive: AtomicBool,
}

impl Conn {
    fn dial(
        endpoint: &str,
        timeout: Duration,
        waiters: Arc<WaiterMap>,
        closed: Arc<AtomicBool>,
    ) -> io::Result<Arc<Conn>> {
        let addr = endpoint
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("{endpoint}: {e}")))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_nodelay(true).ok();
        let reader_stream = stream.try_clone()?;
        reader_stream.set_read_timeout(Some(READER_POLL))?;
        let conn = Arc::new(Conn {
            writer: Mutex::new(BufWriter::new(stream)),
            alive: AtomicBool::new(true),
        });
        let reader_conn = Arc::clone(&conn);
        std::thread::Builder::new()
            .name("remote-udf-reader".into())
            .spawn(move || reader_loop(reader_stream, reader_conn, waiters, closed))?;
        Ok(conn)
    }

    fn poison(&self) {
        self.alive.store(false, Ordering::SeqCst);
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    fn send(&self, frame: &[u8]) -> io::Result<()> {
        let mut writer = self.writer.lock().unwrap();
        write_frame(&mut *writer, frame)
    }
}

fn reader_loop(
    stream: TcpStream,
    conn: Arc<Conn>,
    waiters: Arc<WaiterMap>,
    closed: Arc<AtomicBool>,
) {
    let mut reader = BufReader::new(stream);
    loop {
        if closed.load(Ordering::SeqCst) || !conn.is_alive() {
            return;
        }
        match read_frame(&mut reader) {
            Ok(body) => {
                if let Ok(response) = Response::decode(&body) {
                    // An id nobody is waiting for — a cancelled hedge, a
                    // retried attempt's late answer — is dropped here.
                    let cell = waiters.lock().unwrap().get(&response.id).cloned();
                    if let Some(cell) = cell {
                        cell.fulfill(response.id, response);
                    }
                } else {
                    // Undecodable response: the stream is garbage.
                    conn.poison();
                    return;
                }
            }
            Err(ProtoError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // idle poll quantum; re-check shutdown
            }
            // EOF, truncation, corrupt length prefix, hard I/O error:
            // the connection is dead. In-flight probes on it recover via
            // their attempt deadline, not via any notification from here.
            Err(_) => {
                conn.poison();
                return;
            }
        }
    }
}

/// A pooled, retrying, hedging, breaker-guarded client for one endpoint.
pub struct RemoteClient {
    config: ClientConfig,
    pool: Vec<Mutex<Option<Arc<Conn>>>>,
    waiters: Arc<WaiterMap>,
    breaker: CircuitBreaker,
    stats: Arc<RemoteStats>,
    next_id: AtomicU64,
    next_slot: AtomicU64,
    /// Recent attempt latencies (µs) feeding the hedge-delay percentile.
    latencies: Mutex<Vec<u64>>,
    closed: Arc<AtomicBool>,
    tracker: Option<CostTracker>,
}

impl RemoteClient {
    /// A client for `config.endpoint`. Connections are dialed lazily on
    /// first use, so constructing a client never blocks.
    pub fn new(config: ClientConfig) -> Self {
        let pool = (0..config.connections.max(1))
            .map(|_| Mutex::new(None))
            .collect();
        let breaker = CircuitBreaker::new(config.breaker);
        Self {
            config,
            pool,
            waiters: Arc::new(Mutex::new(HashMap::new())),
            breaker,
            stats: Arc::new(RemoteStats::default()),
            next_id: AtomicU64::new(1),
            next_slot: AtomicU64::new(0),
            latencies: Mutex::new(Vec::with_capacity(LATENCY_WINDOW)),
            closed: Arc::new(AtomicBool::new(false)),
            tracker: None,
        }
    }

    /// Mirrors the wire retry/hedge ledger into a shared cost tracker
    /// (the same one the `UdfInvoker` bills `o_e` through), so the cost
    /// report shows wire amplification next to — but never inside — the
    /// paper-model bill.
    pub fn with_tracker(mut self, tracker: CostTracker) -> Self {
        self.tracker = Some(tracker);
        self
    }

    /// The endpoint this client talks to.
    pub fn endpoint(&self) -> &str {
        &self.config.endpoint
    }

    /// The shared stats handle (for the serving tier's metrics export).
    pub fn stats_handle(&self) -> Arc<RemoteStats> {
        Arc::clone(&self.stats)
    }

    /// Current wire counters.
    pub fn stats(&self) -> RemoteStatsSnapshot {
        RemoteStatsSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            hedges: self.stats.hedges.load(Ordering::Relaxed),
            hedge_wins: self.stats.hedge_wins.load(Ordering::Relaxed),
            timeouts: self.stats.timeouts.load(Ordering::Relaxed),
            transport_errors: self.stats.transport_errors.load(Ordering::Relaxed),
            reconnects: self.stats.reconnects.load(Ordering::Relaxed),
            breaker_opens: self.breaker.opens(),
            breaker_rejections: self.breaker.rejections(),
            fallback_local: self.stats.fallback_local.load(Ordering::Relaxed),
        }
    }

    /// Current breaker state, for tests and metrics.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    pub(crate) fn note_fallback(&self) {
        self.stats.note_fallback();
    }

    /// The hedge delay for the next probe: the observed p99 attempt
    /// latency once enough samples exist, else the configured initial
    /// delay. Always at least 1 ms so a fast server doesn't hedge
    /// every single probe.
    fn hedge_delay(&self, hedge: &HedgeConfig) -> Duration {
        let latencies = self.latencies.lock().unwrap();
        if latencies.len() < hedge.min_samples.max(1) {
            return hedge.initial_delay;
        }
        let mut sorted = latencies.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        let p99_us = sorted[rank.saturating_sub(1).min(sorted.len() - 1)];
        Duration::from_micros(p99_us).max(Duration::from_millis(1))
    }

    fn record_latency(&self, elapsed: Duration) {
        let mut latencies = self.latencies.lock().unwrap();
        if latencies.len() >= LATENCY_WINDOW {
            // Overwrite pseudo-randomly so the window stays recent-ish
            // without a ring index; cheap and allocation-free.
            let at = (elapsed.as_nanos() as usize) % LATENCY_WINDOW;
            latencies[at] = elapsed.as_micros() as u64;
        } else {
            latencies.push(elapsed.as_micros() as u64);
        }
    }

    /// Gets slot `slot`'s connection, redialing if absent or poisoned.
    fn conn_for_slot(&self, slot: usize) -> io::Result<Arc<Conn>> {
        let mut guard = self.pool[slot % self.pool.len()].lock().unwrap();
        if let Some(conn) = guard.as_ref() {
            if conn.is_alive() {
                return Ok(Arc::clone(conn));
            }
        }
        let conn = Conn::dial(
            &self.config.endpoint,
            self.config.connect_timeout,
            Arc::clone(&self.waiters),
            Arc::clone(&self.closed),
        )?;
        self.stats.reconnects.fetch_add(1, Ordering::Relaxed);
        *guard = Some(Arc::clone(&conn));
        Ok(conn)
    }

    fn register(&self, id: u64, cell: &Arc<WaitCell>) {
        self.waiters.lock().unwrap().insert(id, Arc::clone(cell));
    }

    fn deregister(&self, id: u64) {
        self.waiters.lock().unwrap().remove(&id);
    }

    /// Sends one request on the slot's connection. Returns the id it
    /// was registered under, or `None` on a transport failure (the
    /// connection is poisoned and the waiter deregistered).
    fn send_attempt(
        &self,
        slot: usize,
        oracle: &str,
        row: u64,
        cell: &Arc<WaitCell>,
    ) -> Option<u64> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.register(id, cell);
        let request = Request {
            id,
            oracle: oracle.to_string(),
            row,
        };
        let conn = match self.conn_for_slot(slot) {
            Ok(conn) => conn,
            Err(_) => {
                self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                self.deregister(id);
                return None;
            }
        };
        if conn.send(&request.encode()).is_err() {
            conn.poison();
            self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
            self.deregister(id);
            return None;
        }
        Some(id)
    }

    /// Deterministic backoff for retry `attempt` of probe `row`:
    /// exponential from `backoff_base`, capped, with ±25% jitter keyed
    /// on `(row, attempt)` so replays sleep identically.
    fn backoff(&self, row: u64, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_micros() as u64;
        let cap = self.config.backoff_cap.as_micros() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(20)).min(cap).max(1);
        let mut z = row
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(attempt as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 31;
        let jitter = (z % (exp / 2 + 1)).saturating_sub(exp / 4);
        Duration::from_micros(exp.saturating_add(jitter).min(cap))
    }

    /// Evaluates `oracle` on `row`: the full deadline → retry → hedge →
    /// breaker pipeline. Blocks the calling thread until an answer or a
    /// typed failure.
    pub fn probe(&self, oracle: &str, row: u64) -> Result<bool, RemoteError> {
        if self.breaker.admit() == Admission::Rejected {
            return Err(RemoteError::CircuitOpen {
                endpoint: self.config.endpoint.clone(),
            });
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);

        let attempts = 1 + self.config.max_retries;
        for attempt in 0..attempts {
            if attempt > 0 {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                if let Some(tracker) = &self.tracker {
                    tracker.add_retries(1);
                }
                std::thread::sleep(self.backoff(row, attempt - 1));
            }
            match self.one_attempt(oracle, row) {
                AttemptOutcome::Answered(response) => {
                    return self.settle(response, oracle);
                }
                AttemptOutcome::TimedOut => {
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                AttemptOutcome::Transport => {
                    // Already counted in send_attempt; just retry.
                }
            }
        }
        self.breaker.record_failure();
        Err(RemoteError::DeadlineExhausted {
            endpoint: self.config.endpoint.clone(),
            attempts,
        })
    }

    /// One attempt: send, optionally hedge at the p99-derived delay,
    /// wait out the attempt deadline.
    fn one_attempt(&self, oracle: &str, row: u64) -> AttemptOutcome {
        let cell = WaitCell::new();
        let started = Instant::now();
        let deadline = started + self.config.attempt_timeout;
        let slot = self.next_slot.fetch_add(1, Ordering::Relaxed) as usize;

        let Some(primary_id) = self.send_attempt(slot, oracle, row, &cell) else {
            return AttemptOutcome::Transport;
        };

        let mut hedge_id: Option<u64> = None;
        let first_wait_until = match self.config.hedge.as_ref() {
            Some(hedge) => deadline.min(started + self.hedge_delay(hedge)),
            None => deadline,
        };

        let mut winner = cell.wait_until(first_wait_until);
        if winner.is_none() && self.config.hedge.is_some() && Instant::now() < deadline {
            // Primary is slow: hedge on the *next* pool slot so the
            // duplicate rides a different connection.
            self.stats.hedges.fetch_add(1, Ordering::Relaxed);
            if let Some(tracker) = &self.tracker {
                tracker.add_hedges(1);
            }
            hedge_id = self.send_attempt(slot + 1, oracle, row, &cell);
            winner = cell.wait_until(deadline);
        } else if winner.is_none() {
            winner = cell.wait_until(deadline);
        }

        // First answer won (or nobody did): cancel both ids so late
        // answers are discarded by the demux.
        self.deregister(primary_id);
        if let Some(id) = hedge_id {
            self.deregister(id);
        }

        match winner {
            Some((winning_id, response)) => {
                self.record_latency(started.elapsed());
                if Some(winning_id) == hedge_id {
                    self.stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
                }
                AttemptOutcome::Answered(response)
            }
            None => AttemptOutcome::TimedOut,
        }
    }

    /// Maps a server answer to the probe result and feeds the breaker.
    fn settle(&self, response: Response, oracle: &str) -> Result<bool, RemoteError> {
        // The server answered: the *endpoint* is healthy even when the
        // request itself was wrong, so all of these close the breaker.
        self.breaker.record_success();
        match response.status {
            STATUS_OK => Ok(response.answer),
            STATUS_UNKNOWN_ORACLE => Err(RemoteError::UnknownOracle {
                oracle: oracle.to_string(),
            }),
            _ => Err(RemoteError::BadRequest {
                endpoint: self.config.endpoint.clone(),
            }),
        }
    }
}

enum AttemptOutcome {
    Answered(Response),
    TimedOut,
    Transport,
}

impl Drop for RemoteClient {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::SeqCst);
        // Reader threads notice `closed` within one poll quantum and
        // exit; poisoning makes any concurrent sender bail too.
        for slot in &self.pool {
            if let Some(conn) = slot.lock().unwrap().as_ref() {
                conn.poison();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::server::{OracleMap, UdfServer};

    fn server_with(bits: &[bool], plan: FaultPlan) -> UdfServer {
        let mut oracles = OracleMap::new();
        oracles.insert("default".to_string(), Arc::new(bits.to_vec()));
        UdfServer::bind("127.0.0.1:0", oracles, plan).unwrap()
    }

    fn config_for(server: &UdfServer) -> ClientConfig {
        ClientConfig::new(server.addr().to_string())
    }

    #[test]
    fn healthy_probes_answer_correctly() {
        let bits = [true, false, true, true, false];
        let server = server_with(&bits, FaultPlan::healthy());
        let client = RemoteClient::new(config_for(&server));
        for (row, &expected) in bits.iter().enumerate() {
            assert_eq!(client.probe("default", row as u64).unwrap(), expected);
        }
        let stats = client.stats();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.breaker_opens, 0);
    }

    #[test]
    fn unknown_oracle_is_typed_and_not_retried() {
        let server = server_with(&[true], FaultPlan::healthy());
        let client = RemoteClient::new(config_for(&server));
        match client.probe("nonesuch", 0) {
            Err(RemoteError::UnknownOracle { oracle }) => assert_eq!(oracle, "nonesuch"),
            other => panic!("wrong result: {other:?}"),
        }
        assert_eq!(client.stats().retries, 0);
        assert_eq!(client.breaker_state(), BreakerState::Closed);
    }

    #[test]
    fn drops_are_survived_by_retries_and_recorded_in_the_ledger() {
        let plan = FaultPlan {
            seed: 11,
            drop_probability: 0.4,
            ..FaultPlan::healthy()
        };
        let server = server_with(&[true, false, true, false], plan);
        let mut config = config_for(&server);
        config.attempt_timeout = Duration::from_millis(120);
        config.max_retries = 6;
        config.hedge = None;
        let tracker = CostTracker::new();
        let client = RemoteClient::new(config).with_tracker(tracker.clone());
        for row in 0..4u64 {
            for _ in 0..4 {
                let expected = row % 2 == 0;
                assert_eq!(client.probe("default", row).unwrap(), expected);
            }
        }
        let stats = client.stats();
        assert!(stats.retries > 0, "40% drops must force retries: {stats:?}");
        assert_eq!(
            tracker.snapshot().retries,
            stats.retries,
            "ledger mirrors wire retries"
        );
        // Retries are a ledger, not a bill: no o_e was charged here.
        assert_eq!(tracker.snapshot().evaluated, 0);
    }

    #[test]
    fn blackout_trips_the_breaker_and_fails_fast() {
        let server = server_with(&[true], FaultPlan::blackout());
        let mut config = config_for(&server);
        config.attempt_timeout = Duration::from_millis(60);
        config.max_retries = 0;
        config.hedge = None;
        config.breaker = BreakerConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(60),
        };
        let client = RemoteClient::new(config);
        for _ in 0..2 {
            assert!(matches!(
                client.probe("default", 0),
                Err(RemoteError::DeadlineExhausted { .. })
            ));
        }
        assert_eq!(client.breaker_state(), BreakerState::Open);
        let started = Instant::now();
        assert!(matches!(
            client.probe("default", 0),
            Err(RemoteError::CircuitOpen { .. })
        ));
        assert!(
            started.elapsed() < Duration::from_millis(20),
            "open breaker must fail fast, took {:?}",
            started.elapsed()
        );
        assert_eq!(client.stats().breaker_rejections, 1);
    }

    #[test]
    fn tail_stalls_are_cut_by_hedges() {
        // Every probe on an odd-numbered... rather: 35% of responses
        // stall 300ms, well past the hedge delay; the hedge rides a
        // different connection whose fault stream usually misses the
        // stall, so hedged probes finish fast.
        let plan = FaultPlan {
            seed: 5,
            tail_probability: 0.35,
            tail_delay: Duration::from_millis(300),
            ..FaultPlan::healthy()
        };
        let server = server_with(&[true; 64], plan);
        let mut config = config_for(&server);
        config.attempt_timeout = Duration::from_secs(2);
        config.max_retries = 0;
        config.hedge = Some(HedgeConfig {
            initial_delay: Duration::from_millis(30),
            min_samples: usize::MAX, // pin the delay; no p99 adaptation
        });
        let client = RemoteClient::new(config);
        for row in 0..48u64 {
            assert!(client.probe("default", row % 64).unwrap());
        }
        let stats = client.stats();
        assert!(
            stats.hedges > 0,
            "tail stalls must trigger hedges: {stats:?}"
        );
        assert!(
            stats.hedge_wins > 0,
            "some hedges must beat a 300ms stall: {stats:?}"
        );
    }

    #[test]
    fn corrupt_frames_poison_the_connection_and_reconnect() {
        let plan = FaultPlan {
            seed: 3,
            corrupt_probability: 0.5,
            ..FaultPlan::healthy()
        };
        let server = server_with(&[true, false], plan);
        let mut config = config_for(&server);
        config.connections = 1;
        config.attempt_timeout = Duration::from_millis(120);
        config.max_retries = 8;
        config.hedge = None;
        let client = RemoteClient::new(config);
        for row in 0..8u64 {
            assert_eq!(client.probe("default", row % 2).unwrap(), row % 2 == 0);
        }
        let stats = client.stats();
        assert!(
            stats.reconnects > 1,
            "poisoned connections must be redialed: {stats:?}"
        );
    }

    #[test]
    fn p99_hedge_delay_derives_from_observed_latency() {
        let server = server_with(&[true], FaultPlan::healthy());
        let client = RemoteClient::new(config_for(&server));
        let hedge = HedgeConfig {
            initial_delay: Duration::from_millis(77),
            min_samples: 4,
        };
        // Below min_samples: the configured initial delay.
        assert_eq!(client.hedge_delay(&hedge), Duration::from_millis(77));
        for micros in [1000u64, 2000, 3000, 50_000] {
            client.record_latency(Duration::from_micros(micros));
        }
        // p99 of those four samples is the 50ms outlier.
        assert_eq!(client.hedge_delay(&hedge), Duration::from_millis(50));
    }

    #[test]
    fn pipelined_probes_share_connections_out_of_order() {
        let plan = FaultPlan {
            seed: 21,
            tail_probability: 0.3,
            tail_delay: Duration::from_millis(40),
            ..FaultPlan::healthy()
        };
        let server = server_with(&[true, false, true, false, true, false, true, false], plan);
        let mut config = config_for(&server);
        config.connections = 2;
        config.hedge = None;
        config.attempt_timeout = Duration::from_secs(2);
        let client = Arc::new(RemoteClient::new(config));
        std::thread::scope(|s| {
            for row in 0..8u64 {
                let client = Arc::clone(&client);
                s.spawn(move || {
                    assert_eq!(client.probe("default", row).unwrap(), row % 2 == 0);
                });
            }
        });
        // 8 concurrent probes over 2 connections: demux by id worked.
        assert!(server.connections_accepted() <= 2);
    }
}
