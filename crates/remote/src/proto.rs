//! The length-prefixed wire protocol between the remote UDF client and
//! server.
//!
//! One probe is one request frame and (normally) one response frame.
//! Frames are tiny and fixed-layout — no JSON, no allocation surprises on
//! the hot path — and every multi-byte integer is little-endian:
//!
//! ```text
//! request  := u32 len | u64 request_id | u8 op | u16 oracle_len
//!             | oracle bytes | u64 row
//! response := u32 len | u64 request_id | u8 status | u8 answer
//! ```
//!
//! `len` counts the bytes *after* the prefix. `request_id` is chosen by
//! the client and echoed verbatim, which is what lets one connection
//! carry many interleaved in-flight probes (responses may arrive in any
//! order) and lets the client discard a hedged loser by simply not
//! recognizing its id anymore.
//!
//! The decoder is paranoid by design: a length prefix over
//! [`MAX_FRAME_BYTES`], a truncated body, or an undecodable payload is a
//! [`ProtoError::Malformed`], never a panic or an unbounded allocation —
//! the fault-injection harness deliberately sends wrong-length frames to
//! prove the client survives them.

use std::io::{self, Read, Write};

/// Upper bound on a frame body. Real frames are tens of bytes; anything
/// claiming more is corruption (or injected corruption) by definition.
pub const MAX_FRAME_BYTES: usize = 4096;

/// Request opcode: evaluate a named oracle on one row.
pub const OP_PROBE: u8 = 1;

/// Response status: the probe succeeded, `answer` is valid.
pub const STATUS_OK: u8 = 0;
/// Response status: the server has no oracle by that name.
pub const STATUS_UNKNOWN_ORACLE: u8 = 1;
/// Response status: the server could not decode the request.
pub const STATUS_BAD_REQUEST: u8 = 2;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum ProtoError {
    /// The peer closed the connection (clean EOF between frames).
    Closed,
    /// An I/O failure (includes read timeouts surfaced by the socket).
    Io(io::Error),
    /// The bytes violate the protocol: oversized length prefix,
    /// truncated body, unknown opcode, or inconsistent inner lengths.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Io(e) => write!(f, "i/o error: {e}"),
            ProtoError::Malformed(reason) => write!(f, "malformed frame: {reason}"),
        }
    }
}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// One probe request: evaluate oracle `oracle` on row `row`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen id, echoed by the response.
    pub id: u64,
    /// Which named oracle to evaluate.
    pub oracle: String,
    /// The row to evaluate it on.
    pub row: u64,
}

/// One probe response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// One of the `STATUS_*` codes.
    pub status: u8,
    /// The oracle's answer (valid only when `status == STATUS_OK`).
    pub answer: bool,
}

impl Request {
    /// Serializes the request as one frame.
    pub fn encode(&self) -> Vec<u8> {
        let name = self.oracle.as_bytes();
        debug_assert!(name.len() <= u16::MAX as usize);
        let body_len = 8 + 1 + 2 + name.len() + 8;
        let mut out = Vec::with_capacity(4 + body_len);
        out.extend_from_slice(&(body_len as u32).to_le_bytes());
        out.extend_from_slice(&self.id.to_le_bytes());
        out.push(OP_PROBE);
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
        out.extend_from_slice(&self.row.to_le_bytes());
        out
    }

    /// Decodes a request frame body (the bytes after the length prefix).
    pub fn decode(body: &[u8]) -> Result<Self, ProtoError> {
        if body.len() < 8 + 1 + 2 {
            return Err(ProtoError::Malformed("request body too short"));
        }
        let id = u64::from_le_bytes(body[0..8].try_into().unwrap());
        if body[8] != OP_PROBE {
            return Err(ProtoError::Malformed("unknown opcode"));
        }
        let name_len = u16::from_le_bytes(body[9..11].try_into().unwrap()) as usize;
        let expected = 11 + name_len + 8;
        if body.len() != expected {
            return Err(ProtoError::Malformed("request length mismatch"));
        }
        let oracle = std::str::from_utf8(&body[11..11 + name_len])
            .map_err(|_| ProtoError::Malformed("oracle name is not UTF-8"))?
            .to_owned();
        let row = u64::from_le_bytes(body[11 + name_len..expected].try_into().unwrap());
        Ok(Request { id, oracle, row })
    }
}

impl Response {
    /// Serializes the response as one frame.
    pub fn encode(&self) -> [u8; 14] {
        let mut out = [0u8; 14];
        out[0..4].copy_from_slice(&10u32.to_le_bytes());
        out[4..12].copy_from_slice(&self.id.to_le_bytes());
        out[12] = self.status;
        out[13] = self.answer as u8;
        out
    }

    /// Decodes a response frame body.
    pub fn decode(body: &[u8]) -> Result<Self, ProtoError> {
        if body.len() != 10 {
            return Err(ProtoError::Malformed("response length mismatch"));
        }
        Ok(Response {
            id: u64::from_le_bytes(body[0..8].try_into().unwrap()),
            status: body[8],
            answer: body[9] != 0,
        })
    }
}

/// Reads one length-prefixed frame body. Distinguishes a clean close
/// (EOF at a frame boundary → [`ProtoError::Closed`]) from a truncation
/// mid-frame (→ [`ProtoError::Malformed`]).
pub fn read_frame(reader: &mut impl Read) -> Result<Vec<u8>, ProtoError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Err(ProtoError::Closed)
                } else {
                    Err(ProtoError::Malformed("EOF inside length prefix"))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::Malformed("frame length exceeds bound"));
    }
    let mut body = vec![0u8; len];
    let mut read = 0;
    while read < len {
        match reader.read(&mut body[read..]) {
            Ok(0) => return Err(ProtoError::Malformed("EOF inside frame body")),
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(body)
}

/// Writes one already-encoded frame.
pub fn write_frame(writer: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    writer.write_all(frame)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        let req = Request {
            id: 0xDEAD_BEEF_1234_5678,
            oracle: "default".into(),
            row: 42,
        };
        let frame = req.encode();
        let mut cursor = io::Cursor::new(&frame);
        let body = read_frame(&mut cursor).unwrap();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    #[test]
    fn response_roundtrips() {
        for (status, answer) in [
            (STATUS_OK, true),
            (STATUS_OK, false),
            (STATUS_UNKNOWN_ORACLE, false),
        ] {
            let resp = Response {
                id: 7,
                status,
                answer,
            };
            let frame = resp.encode();
            let mut cursor = io::Cursor::new(&frame[..]);
            let body = read_frame(&mut cursor).unwrap();
            assert_eq!(Response::decode(&body).unwrap(), resp);
        }
    }

    #[test]
    fn oversized_length_prefix_is_malformed_not_oom() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&(u32::MAX).to_le_bytes());
        frame.extend_from_slice(b"garbage");
        let mut cursor = io::Cursor::new(&frame);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(ProtoError::Malformed("frame length exceeds bound"))
        ));
    }

    #[test]
    fn eof_at_boundary_is_closed_eof_inside_is_malformed() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(read_frame(&mut empty), Err(ProtoError::Closed)));

        let req = Request {
            id: 1,
            oracle: "o".into(),
            row: 0,
        };
        let frame = req.encode();
        let mut truncated = io::Cursor::new(frame[..frame.len() - 3].to_vec());
        assert!(matches!(
            read_frame(&mut truncated),
            Err(ProtoError::Malformed("EOF inside frame body"))
        ));
        let mut half_prefix = io::Cursor::new(frame[..2].to_vec());
        assert!(matches!(
            read_frame(&mut half_prefix),
            Err(ProtoError::Malformed("EOF inside length prefix"))
        ));
    }

    #[test]
    fn corrupt_bodies_are_rejected() {
        assert!(matches!(
            Request::decode(&[0u8; 4]),
            Err(ProtoError::Malformed("request body too short"))
        ));
        let mut bad_op = Request {
            id: 1,
            oracle: "x".into(),
            row: 2,
        }
        .encode();
        bad_op[12] = 99; // opcode byte (4-byte prefix + 8-byte id)
        assert!(matches!(
            Request::decode(&bad_op[4..]),
            Err(ProtoError::Malformed("unknown opcode"))
        ));
        // Inner name length inconsistent with the frame length.
        let mut bad_len = Request {
            id: 1,
            oracle: "abcd".into(),
            row: 2,
        }
        .encode();
        bad_len[13] = 200; // oracle_len low byte
        assert!(matches!(
            Request::decode(&bad_len[4..]),
            Err(ProtoError::Malformed("request length mismatch"))
        ));
        assert!(Response::decode(&[0u8; 3]).is_err());
    }
}
