//! `expred-udf-server`: a standalone remote UDF oracle server.
//!
//! Serves one named oracle (`default`) whose labels are generated
//! deterministically from `--rows`/`--seed`/`--selectivity`, over the
//! length-prefixed protocol in `expred_remote::proto`, with every
//! fault-injection knob exposed as a flag — the process the remote
//! client's benches and manual experiments point at.
//!
//! ```text
//! expred-udf-server --addr 127.0.0.1:9099 --rows 100000 --seed 42 \
//!     --selectivity 0.25 --base-delay-ms 1 --tail-prob 0.01 \
//!     --tail-delay-ms 100 --drop-prob 0.001
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use expred_remote::{FaultPlan, OracleMap, UdfServer};

struct Options {
    addr: String,
    rows: usize,
    seed: u64,
    selectivity: f64,
    plan: FaultPlan,
}

fn usage() -> String {
    "usage: expred-udf-server [--addr HOST:PORT] [--rows N] [--seed N] \
     [--selectivity P] [--base-delay-ms N] [--ramp-us N] [--tail-prob P] \
     [--tail-delay-ms N] [--drop-prob P] [--corrupt-prob P] \
     [--disconnect-prob P] [--blackout]"
        .to_string()
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        addr: "127.0.0.1:9099".to_string(),
        rows: 10_000,
        seed: 42,
        selectivity: 0.25,
        plan: FaultPlan::healthy(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if flag == "--help" || flag == "-h" {
            return Err(usage());
        }
        if flag == "--blackout" {
            options.plan.blackout = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
        let bad = |detail: &str| format!("invalid {flag} {value:?}: {detail}");
        match flag {
            "--addr" => options.addr = value.clone(),
            "--rows" => options.rows = value.parse().map_err(|_| bad("not a count"))?,
            "--seed" => options.seed = value.parse().map_err(|_| bad("not a u64"))?,
            "--selectivity" => {
                options.selectivity = value.parse().map_err(|_| bad("not a probability"))?
            }
            "--base-delay-ms" => {
                options.plan.base_delay =
                    Duration::from_millis(value.parse().map_err(|_| bad("not a count"))?)
            }
            "--ramp-us" => {
                options.plan.ramp_per_request =
                    Duration::from_micros(value.parse().map_err(|_| bad("not a count"))?)
            }
            "--tail-prob" => {
                options.plan.tail_probability =
                    value.parse().map_err(|_| bad("not a probability"))?
            }
            "--tail-delay-ms" => {
                options.plan.tail_delay =
                    Duration::from_millis(value.parse().map_err(|_| bad("not a count"))?)
            }
            "--drop-prob" => {
                options.plan.drop_probability =
                    value.parse().map_err(|_| bad("not a probability"))?
            }
            "--corrupt-prob" => {
                options.plan.corrupt_probability =
                    value.parse().map_err(|_| bad("not a probability"))?
            }
            "--disconnect-prob" => {
                options.plan.disconnect_probability =
                    value.parse().map_err(|_| bad("not a probability"))?
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
        i += 2;
    }
    options.plan.seed = options.seed;
    if !(0.0..=1.0).contains(&options.selectivity) {
        return Err(format!(
            "--selectivity {} is not in [0, 1]",
            options.selectivity
        ));
    }
    options.plan.validate()?;
    Ok(options)
}

/// The same deterministic label generator the fault suite uses: row `i`
/// is true when a SplitMix64 draw keyed on `(seed, i)` lands under the
/// selectivity, so a client pointed at the same `--rows`/`--seed`/
/// `--selectivity` can reproduce the ground truth locally.
fn generate_labels(rows: usize, seed: u64, selectivity: f64) -> Vec<bool> {
    (0..rows)
        .map(|i| {
            let mut z = seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 11) as f64 / (1u64 << 53) as f64) < selectivity
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let labels = generate_labels(options.rows, options.seed, options.selectivity);
    let positives = labels.iter().filter(|&&b| b).count();
    let mut oracles = OracleMap::new();
    oracles.insert("default".to_string(), Arc::new(labels));

    let server = match UdfServer::bind(&options.addr, oracles, options.plan.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", options.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "expred-udf-server listening on {} (oracle \"default\": {} rows, {} positive, seed {})",
        server.addr(),
        options.rows,
        positives,
        options.seed
    );
    let healthy_here = FaultPlan {
        seed: options.seed,
        ..FaultPlan::healthy()
    };
    if options.plan != healthy_here {
        println!("fault plan active: {:?}", options.plan);
    }

    // Serve until killed; the accept loop owns the process.
    loop {
        std::thread::park();
    }
}
