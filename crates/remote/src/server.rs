//! The bundled UDF oracle server.
//!
//! A std-only TCP server that evaluates *named oracles* — precomputed
//! boolean label vectors registered under a string name — over the
//! length-prefixed protocol in [`crate::proto`]. It exists for two jobs:
//!
//! 1. as the in-process test double the fault-injection suite and the
//!    serving tier's integration tests spin up on a loopback port, and
//! 2. as a standalone binary (`expred-udf-server`) so the remote client
//!    can be exercised against a genuinely separate process.
//!
//! Each accepted connection gets its own worker thread and its own
//! deterministic [`FaultInjector`](crate::fault::FaultInjector)
//! derived from the server's current
//! [`FaultPlan`] and the connection's accept index. The plan is
//! hot-swappable ([`UdfServer::set_plan`]) so a test can let a client
//! warm up healthy, then black-hole the endpoint mid-flight — live
//! connections notice the swap on their next request (their fault
//! stream restarts under the new plan's seed).
//!
//! Shutdown mirrors the serving tier's idiom: flip an atomic flag, then
//! wake the blocking `accept` with a loopback connect. Connection
//! workers poll the flag on a short read-timeout quantum so they exit
//! promptly even when idle.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::fault::{FaultPlan, ResponseFate};
use crate::proto::{
    read_frame, write_frame, ProtoError, Request, Response, STATUS_BAD_REQUEST, STATUS_OK,
    STATUS_UNKNOWN_ORACLE,
};

/// How often an idle connection worker wakes to check the stop flag.
const POLL_QUANTUM: Duration = Duration::from_millis(50);

/// A named-oracle registry: oracle name → the label for each row.
pub type OracleMap = HashMap<String, Arc<Vec<bool>>>;

struct Shared {
    oracles: OracleMap,
    plan: Mutex<FaultPlan>,
    /// Bumped by every `set_plan`; workers rebuild their injector when it
    /// moves so a hot swap takes effect on live connections.
    plan_generation: AtomicU64,
    stop: AtomicBool,
    connections_accepted: AtomicU64,
    requests_served: AtomicU64,
}

/// A running UDF oracle server (owns its accept thread).
pub struct UdfServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl UdfServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral test port),
    /// registers `oracles`, and starts accepting under `plan`.
    pub fn bind(addr: &str, oracles: OracleMap, plan: FaultPlan) -> io::Result<UdfServer> {
        plan.validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            oracles,
            plan: Mutex::new(plan),
            plan_generation: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            connections_accepted: AtomicU64::new(0),
            requests_served: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("udf-server-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(UdfServer {
            shared,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Hot-swaps the fault plan. New connections use it immediately;
    /// live connections pick it up on their next request.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.shared.plan.lock().unwrap() = plan;
        self.shared.plan_generation.fetch_add(1, Ordering::SeqCst);
    }

    /// Connections accepted so far.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Requests read so far (including dropped/corrupted ones).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests_served.load(Ordering::Relaxed)
    }

    /// Stops accepting and unblocks the accept thread. Connection
    /// workers notice within one poll quantum.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() the same way the serving tier does.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for UdfServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let index = shared.connections_accepted.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new()
            .name(format!("udf-server-conn-{index}"))
            .spawn(move || {
                // Worker threads are detached: they exit on their own when
                // the peer closes or the stop flag flips.
                let _ = serve_connection(stream, index, conn_shared);
            });
    }
}

/// Sleeps `total` in poll quanta so injected stalls never outlive shutdown.
fn interruptible_sleep(total: Duration, shared: &Shared) {
    let mut remaining = total;
    while remaining > Duration::ZERO {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let step = remaining.min(POLL_QUANTUM);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

fn serve_connection(stream: TcpStream, index: u64, shared: Arc<Shared>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL_QUANTUM))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    let mut generation = shared.plan_generation.load(Ordering::SeqCst);
    let mut injector = shared.plan.lock().unwrap().injector(index);

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let now = shared.plan_generation.load(Ordering::SeqCst);
        if now != generation {
            generation = now;
            injector = shared.plan.lock().unwrap().injector(index);
        }

        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            Err(ProtoError::Closed) => return Ok(()),
            Err(ProtoError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle quantum elapsed; re-check stop flag and plan.
                continue;
            }
            Err(ProtoError::Io(e)) => return Err(e),
            // A client that sends garbage gets its connection closed.
            Err(ProtoError::Malformed(_)) => return Ok(()),
        };
        shared.requests_served.fetch_add(1, Ordering::Relaxed);

        if injector.blackout() {
            // Swallow the request; answer nothing, ever.
            continue;
        }

        let response = match Request::decode(&body) {
            Ok(request) => {
                let (status, answer) = match shared.oracles.get(&request.oracle) {
                    Some(labels) => match labels.get(request.row as usize) {
                        Some(&bit) => (STATUS_OK, bit),
                        None => (STATUS_BAD_REQUEST, false),
                    },
                    None => (STATUS_UNKNOWN_ORACLE, false),
                };
                Response {
                    id: request.id,
                    status,
                    answer,
                }
            }
            Err(_) => Response {
                id: 0,
                status: STATUS_BAD_REQUEST,
                answer: false,
            },
        };

        let decision = injector.next();
        if decision.delay > Duration::ZERO {
            interruptible_sleep(decision.delay, &shared);
            if shared.stop.load(Ordering::SeqCst) {
                return Ok(());
            }
        }
        match decision.fate {
            ResponseFate::Respond => {
                write_frame(&mut writer, &response.encode())?;
            }
            ResponseFate::Drop => {
                // Read, never answer: the client's deadline is its only out.
            }
            ResponseFate::CorruptLength => {
                // A length prefix over the protocol bound followed by the
                // real body: the client must reject it without allocating.
                let mut corrupt = Vec::with_capacity(14);
                corrupt.extend_from_slice(&1_000_000u32.to_le_bytes());
                corrupt.extend_from_slice(&response.encode()[4..]);
                writer.write_all(&corrupt)?;
                writer.flush()?;
            }
            ResponseFate::TruncateAndClose => {
                let frame = response.encode();
                writer.write_all(&frame[..frame.len() / 2])?;
                writer.flush()?;
                return Ok(()); // FIN mid-response
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::write_frame as send;

    fn oracle(bits: &[bool]) -> OracleMap {
        let mut map = HashMap::new();
        map.insert("default".to_string(), Arc::new(bits.to_vec()));
        map
    }

    fn probe(stream: &mut TcpStream, id: u64, oracle: &str, row: u64) -> Response {
        let request = Request {
            id,
            oracle: oracle.into(),
            row,
        };
        send(stream, &request.encode()).unwrap();
        let body = read_frame(stream).unwrap();
        Response::decode(&body).unwrap()
    }

    #[test]
    fn healthy_server_answers_registered_oracles() {
        let server = UdfServer::bind(
            "127.0.0.1:0",
            oracle(&[true, false, true]),
            FaultPlan::healthy(),
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        assert!(probe(&mut stream, 1, "default", 0).answer);
        assert!(!probe(&mut stream, 2, "default", 1).answer);
        assert!(probe(&mut stream, 3, "default", 2).answer);
        assert_eq!(
            probe(&mut stream, 4, "nonesuch", 0).status,
            STATUS_UNKNOWN_ORACLE
        );
        assert_eq!(
            probe(&mut stream, 5, "default", 99).status,
            STATUS_BAD_REQUEST
        );
        assert_eq!(server.requests_served(), 5);
    }

    #[test]
    fn ids_echo_back_verbatim() {
        let server = UdfServer::bind("127.0.0.1:0", oracle(&[true]), FaultPlan::healthy()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        for id in [0u64, 1, u64::MAX, 0xCAFE_BABE] {
            assert_eq!(probe(&mut stream, id, "default", 0).id, id);
        }
    }

    #[test]
    fn blackout_server_accepts_but_never_answers() {
        let server =
            UdfServer::bind("127.0.0.1:0", oracle(&[true]), FaultPlan::blackout()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_millis(150)))
            .unwrap();
        let request = Request {
            id: 1,
            oracle: "default".into(),
            row: 0,
        };
        send(&mut stream, &request.encode()).unwrap();
        let err = read_frame(&mut stream).unwrap_err();
        assert!(
            matches!(err, ProtoError::Io(ref e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut),
            "expected a read timeout, got {err}"
        );
    }

    #[test]
    fn hot_swapped_plan_reaches_live_connections() {
        let server = UdfServer::bind("127.0.0.1:0", oracle(&[true]), FaultPlan::healthy()).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        assert_eq!(probe(&mut stream, 1, "default", 0).status, STATUS_OK);

        server.set_plan(FaultPlan::blackout());
        // Give the worker a poll quantum to notice the generation bump.
        std::thread::sleep(POLL_QUANTUM * 2);
        stream
            .set_read_timeout(Some(Duration::from_millis(150)))
            .unwrap();
        let request = Request {
            id: 2,
            oracle: "default".into(),
            row: 0,
        };
        send(&mut stream, &request.encode()).unwrap();
        assert!(read_frame(&mut stream).is_err(), "blackout must not answer");
    }

    #[test]
    fn corrupt_fate_emits_oversized_length_prefix() {
        let plan = FaultPlan {
            corrupt_probability: 1.0,
            ..FaultPlan::healthy()
        };
        let server = UdfServer::bind("127.0.0.1:0", oracle(&[true]), plan).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let request = Request {
            id: 1,
            oracle: "default".into(),
            row: 0,
        };
        send(&mut stream, &request.encode()).unwrap();
        assert!(matches!(
            read_frame(&mut stream),
            Err(ProtoError::Malformed("frame length exceeds bound"))
        ));
    }

    #[test]
    fn shutdown_is_prompt_even_with_idle_connections() {
        let mut server =
            UdfServer::bind("127.0.0.1:0", oracle(&[true]), FaultPlan::healthy()).unwrap();
        let _idle = TcpStream::connect(server.addr()).unwrap();
        let started = std::time::Instant::now();
        server.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown took {:?}",
            started.elapsed()
        );
    }
}
