//! Facade crate for the `expred` workspace. See README.md.
//!
//! Re-exports the public API of every member crate so applications can
//! depend on a single crate:
//!
//! ```
//! use expred::stats::Prng;
//! let mut rng = Prng::seeded(1);
//! assert!(rng.f64() < 1.0);
//! ```

pub mod cli;

pub use expred_core as core;
pub use expred_exec as exec;
pub use expred_ml as ml;
pub use expred_solver as solver;
pub use expred_stats as stats;
pub use expred_table as table;
pub use expred_udf as udf;
