//! Shared command-line plumbing for the workspace examples.
//!
//! Every runnable example used to hand-roll the same `--parallel` /
//! `--pool` flag scan; this module is the one copy. It also gives every
//! example a `--help` screen for free:
//!
//! ```no_run
//! let backend = expred::cli::ExampleCli::new("quickstart", "the paper's running example")
//!     .parse_backend();
//! println!("{}", backend.banner());
//! let executor = backend.executor();
//! ```

use expred_core::QueryEngine;
use expred_exec::{Executor, Parallel, Sequential, WorkerPool};

/// Which executor backend an example should run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// One probe at a time on the calling thread (the default).
    #[default]
    Sequential,
    /// Scoped threads spawned per batch (`--parallel`).
    Parallel,
    /// The persistent work-stealing worker pool (`--pool`).
    Pool,
}

impl Backend {
    /// The one-line banner the examples print before running.
    pub fn banner(self) -> String {
        match self {
            Backend::Sequential => {
                "executor backend: sequential (pass --parallel or --pool to fan out)".to_owned()
            }
            Backend::Parallel => format!(
                "executor backend: parallel ({} threads)",
                Parallel::new().threads()
            ),
            Backend::Pool => format!(
                "executor backend: worker_pool ({} persistent workers)",
                WorkerPool::new().threads()
            ),
        }
    }

    /// Builds the executor.
    pub fn executor(self) -> Box<dyn Executor> {
        match self {
            Backend::Sequential => Box::new(Sequential),
            Backend::Parallel => Box::new(Parallel::new()),
            Backend::Pool => Box::new(WorkerPool::new()),
        }
    }

    /// A [`QueryEngine`] on this backend.
    pub fn engine(self) -> QueryEngine {
        QueryEngine::with_executor(self.executor())
    }
}

/// One example's command-line surface: name, a one-line description, and
/// the shared flag set.
pub struct ExampleCli {
    name: &'static str,
    about: &'static str,
    /// Whether `--parallel` / `--pool` are meaningful for this example.
    backend_flags: bool,
}

impl ExampleCli {
    /// Declares an example that accepts the backend flags.
    pub fn new(name: &'static str, about: &'static str) -> Self {
        Self {
            name,
            about,
            backend_flags: true,
        }
    }

    /// Declares an example with no backend flags (still gets `--help`).
    pub fn without_backend_flags(name: &'static str, about: &'static str) -> Self {
        Self {
            backend_flags: false,
            ..Self::new(name, about)
        }
    }

    fn usage(&self) -> String {
        let mut usage = format!(
            "{about}\n\nusage: cargo run --release --example {name} [-- FLAGS]\n\nflags:\n",
            about = self.about,
            name = self.name,
        );
        if self.backend_flags {
            usage.push_str(
                "  --parallel  fan UDF probes out across scoped worker threads\n\
                 \x20 --pool      run probes through the persistent work-stealing WorkerPool\n",
            );
        }
        usage.push_str("  --help      show this message");
        usage
    }

    /// Parses `std::env::args`: prints usage and exits on `--help` (or on
    /// an unknown flag), and returns the chosen backend (`--pool` wins
    /// over `--parallel`, matching the examples' historical precedence).
    pub fn parse_backend(&self) -> Backend {
        let mut backend = Backend::Sequential;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--help" | "-h" => {
                    println!("{}", self.usage());
                    std::process::exit(0);
                }
                "--pool" if self.backend_flags => backend = Backend::Pool,
                "--parallel" if self.backend_flags && backend != Backend::Pool => {
                    backend = Backend::Parallel
                }
                "--parallel" if self.backend_flags => {}
                other => {
                    eprintln!("unknown flag {other:?}\n\n{}", self.usage());
                    std::process::exit(2);
                }
            }
        }
        backend
    }
}
