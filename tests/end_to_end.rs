//! Cross-crate integration tests: the full pipelines over the synthetic
//! datasets, exercised through the `expred` facade exactly as a downstream
//! user would.

use expred::core::optimize::CorrelationModel;
use expred::core::{
    run_intel_sample, run_naive, run_optimal, IntelSampleConfig, PredictorChoice, QuerySpec,
    SampleSizeRule,
};
use expred::table::datasets::{Dataset, DatasetSpec, LENDING_CLUB, PROSPER};

/// Shrunken clones keep the suite quick while preserving group structure.
fn small(spec: DatasetSpec, rows: usize, seed: u64) -> Dataset {
    Dataset::generate(DatasetSpec { rows, ..spec }, seed)
}

#[test]
fn cost_ordering_optimal_intel_naive() {
    let ds = small(LENDING_CLUB, 10_000, 1);
    let spec = QuerySpec::paper_default();
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    let optimal = run_optimal(&ds, &spec, "grade", 11);
    let intel = run_intel_sample(&ds, &cfg, 11);
    let naive = run_naive(&ds, &spec, 11);
    assert!(
        optimal.counts.evaluated <= intel.counts.evaluated,
        "optimal {} > intel {}",
        optimal.counts.evaluated,
        intel.counts.evaluated
    );
    assert!(
        intel.counts.evaluated < naive.counts.evaluated,
        "intel {} >= naive {}",
        intel.counts.evaluated,
        naive.counts.evaluated
    );
}

#[test]
fn constraint_satisfaction_rate_tracks_rho() {
    // The paper's Figure 2 guarantee: over repeated runs, both constraints
    // hold at least rho of the time (checked with slack for Monte-Carlo
    // noise at 24 runs).
    let ds = small(PROSPER, 8_000, 2);
    let spec = QuerySpec::paper_default(); // rho = 0.8
    let cfg = IntelSampleConfig {
        spec,
        rule: SampleSizeRule::Fraction(0.05),
        corr: CorrelationModel::Independent,
        predictor: PredictorChoice::Fixed("grade".into()),
    };
    let runs = 24;
    let mut precision_ok = 0;
    let mut recall_ok = 0;
    for seed in 0..runs {
        let out = run_intel_sample(&ds, &cfg, 1_000 + seed);
        if out.summary.precision >= spec.alpha {
            precision_ok += 1;
        }
        if out.summary.recall >= spec.beta {
            recall_ok += 1;
        }
    }
    assert!(
        precision_ok >= 19,
        "precision met only {precision_ok}/{runs} times (need >= rho-ish)"
    );
    assert!(
        recall_ok >= 19,
        "recall met only {recall_ok}/{runs} times (need >= rho-ish)"
    );
}

#[test]
fn sampling_cost_is_part_of_the_bill() {
    // An Intel-Sample run's evaluation count must include its sample: with
    // a 20% sampling rule the evaluations can never drop below 20% of the
    // table (minus reuse).
    let ds = small(PROSPER, 5_000, 3);
    let cfg = IntelSampleConfig {
        spec: QuerySpec::paper_default(),
        rule: SampleSizeRule::Fraction(0.2),
        corr: CorrelationModel::Independent,
        predictor: PredictorChoice::Fixed("grade".into()),
    };
    let out = run_intel_sample(&ds, &cfg, 4);
    assert!(
        out.counts.evaluated >= (0.19 * 5_000.0) as u64,
        "sampling evaluations missing from the bill: {}",
        out.counts.evaluated
    );
}

#[test]
fn unknown_correlation_model_is_more_conservative() {
    let ds = small(LENDING_CLUB, 10_000, 5);
    let spec = QuerySpec::paper_default();
    let mk = |corr| IntelSampleConfig {
        spec,
        rule: SampleSizeRule::Fraction(0.05),
        corr,
        predictor: PredictorChoice::Fixed("grade".into()),
    };
    // Average over a few seeds: the worst-case-correlation program must
    // spend at least as much as the independence program.
    let mut ind = 0u64;
    let mut unk = 0u64;
    for seed in 0..5 {
        ind += run_intel_sample(&ds, &mk(CorrelationModel::Independent), 50 + seed)
            .counts
            .evaluated;
        unk += run_intel_sample(&ds, &mk(CorrelationModel::Unknown), 50 + seed)
            .counts
            .evaluated;
    }
    assert!(
        unk as f64 >= 0.95 * ind as f64,
        "unknown-correlations ({unk}) should not beat independent ({ind})"
    );
}

#[test]
fn browsing_scenario_returns_only_evaluated_tuples() {
    // alpha = 1: every returned tuple must have been evaluated (no blind
    // returns), so precision is exactly 1.
    let ds = small(PROSPER, 5_000, 6);
    let cfg = IntelSampleConfig {
        spec: QuerySpec::browsing(0.7, 0.8, expred::udf::CostModel::PAPER_DEFAULT),
        rule: SampleSizeRule::Fraction(0.05),
        corr: CorrelationModel::Independent,
        predictor: PredictorChoice::Fixed("grade".into()),
    };
    let out = run_intel_sample(&ds, &cfg, 7);
    assert_eq!(out.summary.precision, 1.0, "browsing mode must be exact");
    assert!(out.summary.recall >= 0.6, "recall {}", out.summary.recall);
}

#[test]
fn facade_reexports_compose() {
    // Spot-check that the facade exposes the full toolchain.
    let mut rng = expred::stats::Prng::seeded(1);
    let beta = expred::stats::Beta::posterior(3, 10);
    assert!(beta.sample(&mut rng) <= 1.0);
    let plan = expred::core::Plan::evaluate_all(2);
    assert_eq!(plan.num_groups(), 2);
    let model = expred::udf::CostModel::PAPER_DEFAULT;
    assert_eq!(model.total(1, 1), 4.0);
}
