//! Concurrency suite: one `QueryEngine`, many worker threads.
//!
//! The engine's `&self + Sync` contract is only worth having if real
//! thread interleavings cannot corrupt answers or bills. Three invariants
//! are proven here, each against a serial reference run:
//!
//! * **Determinism** — every query served concurrently returns answers
//!   byte-identical to the serial, cache-less reference pipeline (for
//!   workloads whose demand stream is cache-independent, i.e. Naive).
//! * **Bill conservation** — across every interleaving, each query's
//!   `evaluated + cache_hits + reuse_hits` equals its cache-less demand,
//!   and the session total plus `result_hits`-implied savings exactly
//!   reconstructs the cache-less bill of the whole workload.
//! * **Zero stale answers** — result-memo hits only ever serve the exact
//!   identity they were stored under, and `clear_caches` racing in-flight
//!   runs never panics nor causes a wrong answer afterward.

use expred::core::{
    run_naive, IntelSampleConfig, PredictorChoice, Query, QueryEngine, QuerySpec, RunOutcome,
};
use expred::table::datasets::{Dataset, DatasetSpec, PROSPER};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Acceptance floor: the suite must hold at 8+ worker threads.
const THREADS: usize = 8;

fn prosper(seed: u64) -> Dataset {
    Dataset::generate(
        DatasetSpec {
            rows: 3_000,
            ..PROSPER
        },
        seed,
    )
}

fn intel() -> Query {
    Query::IntelSample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
        "grade".into(),
    )))
}

/// This thread's slice of the overlapping workload: two accuracy
/// contracts, globally distinct seeds, all over one shared table — the
/// row sets overlap heavily (each Naive query touches a random ~80% of
/// rows) while every `(spec, seed)` identity stays unique.
fn thread_mix(thread: usize) -> Vec<(QuerySpec, u64)> {
    let a = QuerySpec::paper_default();
    let b = QuerySpec::new(0.7, 0.7, 0.8, a.cost);
    (0..8)
        .map(|i| {
            let spec = if i % 2 == 0 { a } else { b };
            (spec, (thread as u64) * 1_000 + i)
        })
        .collect()
}

#[test]
fn concurrent_mix_is_byte_identical_to_serial_reference_and_conserves_the_bill() {
    let ds = prosper(1);
    // Serial, cache-less reference: the legacy entry point, one query at
    // a time on this thread. Also yields each query's cache-less bill.
    let references: Vec<Vec<(QuerySpec, u64, RunOutcome)>> = (0..THREADS)
        .map(|t| {
            thread_mix(t)
                .into_iter()
                .map(|(spec, seed)| (spec, seed, run_naive(&ds, &spec, seed)))
                .collect()
        })
        .collect();
    let cacheless_bill: u64 = references
        .iter()
        .flatten()
        .map(|(_, _, out)| out.counts.demanded())
        .sum();

    let engine = QueryEngine::new();
    let outcomes: Vec<Vec<RunOutcome>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let engine = &engine;
                let ds = &ds;
                scope.spawn(move || {
                    thread_mix(t)
                        .into_iter()
                        .map(|(spec, seed)| engine.run(ds, &Query::Naive(spec), seed))
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (thread_outs, thread_refs) in outcomes.iter().zip(&references) {
        for (out, (_, seed, reference)) in thread_outs.iter().zip(thread_refs) {
            assert_eq!(
                out.returned, reference.returned,
                "answers diverged from the serial reference (seed {seed})"
            );
            assert_eq!(out.summary, reference.summary);
            assert_eq!(
                out.counts.demanded(),
                reference.counts.demanded(),
                "a query's demand stream must not depend on interleaving"
            );
        }
    }

    // Exact conservation: no identity repeats, so the memo never fires,
    // and every demanded row across the session was charged exactly once
    // (fresh, memo hit, or cross-query reuse) — nothing more, nothing
    // lost, no matter the interleaving.
    let stats = engine.stats();
    assert_eq!(stats.queries, (THREADS * 8) as u64);
    assert_eq!(stats.result_hits, 0, "all identities are distinct");
    let session = engine.session_counts();
    assert_eq!(
        session.demanded(),
        cacheless_bill,
        "fresh o_e + memo hits + reuse must exactly conserve the cache-less bill"
    );
    assert!(
        session.reuse_hits > 0,
        "an overlapping concurrent workload must actually share rows"
    );
    assert!(session.evaluated < cacheless_bill, "sharing must save o_e");
}

#[test]
fn concurrent_identical_repeats_are_memoized_free_and_exactly_accounted() {
    let ds = prosper(2);
    let engine = QueryEngine::new();
    let query = intel();
    // Warm the memo serially so every concurrent repeat is a guaranteed
    // hit (no cold race — that case is exercised by the clear test).
    let first = engine.run(&ds, &query, 42);
    let warm_bill = first.counts.demanded();
    let after_warm = engine.session_counts();

    const REPEATS: usize = 8;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (engine, ds, query, first) = (&engine, &ds, &query, &first);
            scope.spawn(move || {
                for _ in 0..REPEATS {
                    let again = engine.run(ds, query, 42);
                    assert_eq!(again.returned, first.returned);
                    assert_eq!(again.counts, first.counts);
                    assert_eq!(again.cost, first.cost);
                }
            });
        }
    });

    assert_eq!(
        engine.session_counts(),
        after_warm,
        "memoized repeats must charge nothing to the session"
    );
    let stats = engine.stats();
    let repeats = (THREADS * REPEATS) as u64;
    assert_eq!(stats.queries, 1 + repeats);
    assert_eq!(stats.result_hits, repeats);
    // Cost conservation with the memo in the ledger: the cache-less bill
    // of (1 + repeats) identical requests is (1 + repeats) * warm_bill;
    // the session paid warm_bill once and the memo absorbed the rest.
    assert_eq!(
        engine.session_counts().demanded() + stats.result_hits * warm_bill,
        (1 + repeats) * warm_bill,
    );
}

#[test]
fn stats_snapshots_stay_consistent_while_runs_are_in_flight() {
    let ds = prosper(3);
    let engine = QueryEngine::new();
    // Warm one identity so workers mix hits and misses.
    engine.run(&ds, &intel(), 7);
    // Count workers still running, so the reader keeps asserting until
    // the *last* one finishes (a single done flag would stop it at the
    // first, leaving most of the concurrent window unchecked).
    let remaining = AtomicUsize::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (engine, ds, remaining) = (&engine, &ds, &remaining);
            scope.spawn(move || {
                for i in 0..12u64 {
                    // Alternate memoized repeats with fresh identities.
                    let seed = if i % 2 == 0 {
                        7
                    } else {
                        100 + t as u64 * 50 + i
                    };
                    engine.run(ds, &intel(), seed);
                }
                remaining.fetch_sub(1, Ordering::Release);
            });
        }
        // Reader thread: every snapshot, at any instant, must be
        // internally consistent — hits never outnumber queries.
        scope.spawn(|| {
            while remaining.load(Ordering::Acquire) > 0 {
                let s = engine.stats();
                assert!(
                    s.result_hits <= s.queries,
                    "inconsistent snapshot: {} hits > {} queries",
                    s.result_hits,
                    s.queries
                );
                std::hint::spin_loop();
            }
        });
    });
    let s = engine.stats();
    assert_eq!(s.queries, (THREADS * 12) as u64 + 1);
    assert!(s.result_hits >= (THREADS * 6) as u64);
}

#[test]
fn clear_caches_races_in_flight_runs_without_panics_or_stale_serves() {
    let ds = prosper(4);
    let engine = QueryEngine::new();
    let spec = QuerySpec::paper_default();
    // Serial references for every identity the workers will submit.
    let references: Vec<RunOutcome> = (0..4).map(|s| run_naive(&ds, &spec, s)).collect();

    // Count workers still running, so the clear hammer races the *whole*
    // concurrent window, not just until the fastest worker finishes.
    let remaining = AtomicUsize::new(THREADS);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (engine, ds, references, remaining) = (&engine, &ds, &references, &remaining);
            scope.spawn(move || {
                for i in 0..16u64 {
                    let seed = (t as u64 + i) % 4;
                    let out = engine.run(ds, &Query::Naive(spec), seed);
                    assert_eq!(
                        out.returned, references[seed as usize].returned,
                        "a clear racing this run changed its answer"
                    );
                }
                remaining.fetch_sub(1, Ordering::Release);
            });
        }
        scope.spawn(|| {
            // Hammer clears the whole time the workers run.
            while remaining.load(Ordering::Acquire) > 0 {
                engine.clear_caches();
                std::thread::yield_now();
            }
        });
    });

    // Quiescent semantics: after a clear with nothing in flight, a
    // previously memoized identity pays full price again — the clear
    // dropped it and nothing resurrects it.
    let before = engine.run(&ds, &Query::Naive(spec), 99);
    engine.clear_caches();
    assert!(engine.store().is_empty(), "row tier must be empty at rest");
    let hits_before = engine.stats().result_hits;
    let again = engine.run(&ds, &Query::Naive(spec), 99);
    assert_eq!(engine.stats().result_hits, hits_before, "no memo serve");
    assert_eq!(again.counts.evaluated, before.counts.demanded());
    assert_eq!(again.counts.reuse_hits, 0);
    assert_eq!(again.returned, before.returned);
}

#[test]
fn one_engine_is_shareable_from_owned_threads_via_arc() {
    // 'static sharing (the deployment shape: Arc<QueryEngine> in a server)
    // — scoped borrows above prove Sync; this proves Send + 'static.
    let ds = Arc::new(prosper(5));
    let engine = Arc::new(QueryEngine::new());
    let spec = QuerySpec::paper_default();
    let reference = run_naive(&ds, &spec, 1);
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (engine, ds) = (Arc::clone(&engine), Arc::clone(&ds));
            std::thread::spawn(move || engine.run(&ds, &Query::Naive(spec), 1))
        })
        .collect();
    for handle in handles {
        assert_eq!(handle.join().unwrap().returned, reference.returned);
    }
    assert_eq!(engine.stats().queries, THREADS as u64);
}
