//! The fallible request surface: every [`EngineError`] variant has a
//! reachable trigger, the infeasibility policy behaves as documented,
//! custom strategies plug into the engine's full session machinery, and
//! predicate expressions run end to end through the session cache.

use expred::core::strategy::{Fingerprint, Strategy, StrategyIdentity};
use expred::core::{
    EngineError, InfeasiblePolicy, QueryEngine, QueryRequest, QuerySpec, RunOutcome,
};
use expred::exec::ExecContext;
use expred::table::datasets::{Dataset, DatasetSpec, LABEL_COLUMN, PROSPER};
use expred::udf::{BooleanUdf, CostModel, OracleUdf, Pred};

fn dataset(rows: usize, seed: u64) -> Dataset {
    Dataset::generate(DatasetSpec { rows, ..PROSPER }, seed)
}

#[test]
fn invalid_spec_is_rejected_before_any_work() {
    let ds = dataset(500, 1);
    let engine = QueryEngine::new();
    let bad = QuerySpec {
        alpha: 1.5,
        ..QuerySpec::paper_default()
    };
    match engine.submit(&ds, &QueryRequest::naive(bad)) {
        Err(EngineError::InvalidSpec { field, value, .. }) => {
            assert_eq!(field, "alpha");
            assert_eq!(value, 1.5);
        }
        other => panic!("expected InvalidSpec, got {other:?}"),
    }
    // Rejected before counting or billing: the engine is untouched.
    assert_eq!(engine.stats().queries, 0);
    assert_eq!(engine.session_counts().evaluated, 0);
}

#[test]
fn unknown_predictor_column_is_an_error_not_a_panic() {
    let ds = dataset(500, 2);
    let engine = QueryEngine::new();
    let spec = QuerySpec::paper_default();
    for request in [
        QueryRequest::optimal(spec, "no_such_column"),
        QueryRequest::adaptive(
            spec,
            expred::core::CorrelationModel::Independent,
            "no_such_column",
        ),
        QueryRequest::intel_sample(expred::core::IntelSampleConfig::experiment1(
            expred::core::PredictorChoice::Fixed("no_such_column".into()),
        )),
    ] {
        match engine.submit(&ds, &request) {
            Err(EngineError::UnknownColumn { column, available }) => {
                assert_eq!(column, "no_such_column");
                assert!(available.iter().any(|c| c == "grade"), "{available:?}");
            }
            other => panic!("expected UnknownColumn, got {other:?}"),
        }
    }
}

#[test]
fn invalid_request_parameters_are_typed_errors() {
    let ds = dataset(500, 3);
    let engine = QueryEngine::new();
    let spec = QuerySpec::paper_default();
    assert!(matches!(
        engine.submit(&ds, &QueryRequest::multiple(spec, 0)),
        Err(EngineError::InvalidRequest { .. })
    ));
    assert!(matches!(
        engine.submit(
            &ds,
            &QueryRequest::iterative(
                spec,
                expred::core::CorrelationModel::Independent,
                "grade",
                expred::core::SampleSizeRule::Fraction(0.0),
                2,
            ),
        ),
        Err(EngineError::InvalidRequest { .. })
    ));
}

#[test]
fn bad_expressions_are_rejected() {
    let ds = dataset(500, 4);
    let engine = QueryEngine::new();
    // An anonymous UDF has no fingerprint: the request has no identity.
    struct Anon;
    impl BooleanUdf for Anon {
        fn evaluate(&self, _: &expred::table::Table, _: usize) -> bool {
            true
        }
    }
    let poisoned = Pred::udf(OracleUdf::new(LABEL_COLUMN)).and(Pred::udf(Anon));
    match engine.submit(
        &ds,
        &QueryRequest::expr_scan(poisoned, CostModel::PAPER_DEFAULT),
    ) {
        Err(EngineError::BadExpression { reason }) => {
            assert!(reason.contains("fingerprint"), "{reason}");
        }
        other => panic!("expected BadExpression, got {other:?}"),
    }
    // A NaN leaf cost is malformed too.
    let nan_cost = Pred::udf_with_cost(OracleUdf::new(LABEL_COLUMN), f64::NAN);
    assert!(matches!(
        engine.submit(
            &ds,
            &QueryRequest::expr_scan(nan_cost, CostModel::PAPER_DEFAULT)
        ),
        Err(EngineError::BadExpression { .. })
    ));
    // A mistyped column inside a leaf is a typed error, not a mid-scan
    // panic: leaves declare their columns via BooleanUdf::required_columns.
    let typo = Pred::udf(OracleUdf::new(LABEL_COLUMN)).and(Pred::udf(OracleUdf::new("no_such")));
    match engine.submit(
        &ds,
        &QueryRequest::expr_scan(typo, CostModel::PAPER_DEFAULT),
    ) {
        Err(EngineError::UnknownColumn { column, .. }) => assert_eq!(column, "no_such"),
        other => panic!("expected UnknownColumn, got {other:?}"),
    }
}

/// A strategy whose plan is always "infeasible": exercises the policy
/// split and proves the open trait plugs into the engine's memo.
struct AlwaysInfeasible;

impl Strategy for AlwaysInfeasible {
    fn name(&self) -> &str {
        "always_infeasible"
    }

    fn fingerprint(&self, _fp: &mut Fingerprint) {}

    fn execute(
        &self,
        ds: &Dataset,
        _seed: u64,
        _ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        let mut outcome = RunOutcome::trivial((0..ds.table.num_rows() as u32).collect());
        outcome.plan_feasible = false;
        Ok(outcome)
    }
}

#[test]
fn infeasible_policy_errors_only_when_asked() {
    let ds = dataset(200, 5);
    let engine = QueryEngine::new();
    // Default policy: the fallback outcome is returned, flagged.
    let relaxed = engine
        .submit(&ds, &QueryRequest::new(AlwaysInfeasible))
        .expect("fallback policy returns the outcome");
    assert!(!relaxed.plan_feasible);
    // Strict policy: the same request surfaces a typed error...
    match engine.submit(
        &ds,
        &QueryRequest::new(AlwaysInfeasible).with_on_infeasible(InfeasiblePolicy::Error),
    ) {
        Err(EngineError::Infeasible { strategy }) => {
            assert_eq!(strategy, "always_infeasible")
        }
        other => panic!("expected Infeasible, got {other:?}"),
    }
    // ...but the outcome was memoized by the first run, so the strict
    // probe cost nothing new and a relaxed resubmission is a memo hit.
    assert_eq!(engine.stats().queries, 2);
    assert_eq!(engine.stats().result_hits, 1);
}

/// A custom strategy: proves out-of-crate implementations get memoized
/// and deduplicated exactly like built-ins.
struct FirstK(usize);

impl Strategy for FirstK {
    fn name(&self) -> &str {
        "first_k"
    }

    fn fingerprint(&self, fp: &mut Fingerprint) {
        fp.write_u64(self.0 as u64);
    }

    fn execute(
        &self,
        ds: &Dataset,
        _seed: u64,
        _ctx: &ExecContext<'_>,
    ) -> Result<RunOutcome, EngineError> {
        Ok(RunOutcome::trivial(
            (0..self.0.min(ds.table.num_rows()) as u32).collect(),
        ))
    }
}

#[test]
fn custom_strategies_share_the_result_memo() {
    let ds = dataset(300, 6);
    let engine = QueryEngine::new();
    let first = engine.submit(&ds, &QueryRequest::new(FirstK(10))).unwrap();
    assert_eq!(first.returned.len(), 10);
    let again = engine.submit(&ds, &QueryRequest::new(FirstK(10))).unwrap();
    assert_eq!(first.returned, again.returned);
    assert_eq!(engine.stats().result_hits, 1, "identical request memoizes");
    // A different parameter is a different identity.
    let other = engine.submit(&ds, &QueryRequest::new(FirstK(20))).unwrap();
    assert_eq!(other.returned.len(), 20);
    assert_eq!(engine.stats().result_hits, 1);
    assert_ne!(
        StrategyIdentity::of(&FirstK(10)),
        StrategyIdentity::of(&FirstK(20))
    );
}

#[test]
fn expr_scan_runs_through_the_session_cache() {
    let ds = dataset(2_000, 7);
    let engine = QueryEngine::new();
    let cost = CostModel::PAPER_DEFAULT;
    // A conjunction over the label oracle and a derived noisy view.
    let clean = || Pred::udf(OracleUdf::new(LABEL_COLUMN));
    let noisy = || {
        Pred::udf_with_cost(
            expred::udf::NoisyUdf::new(OracleUdf::new(LABEL_COLUMN), 0.2, 9),
            3.0,
        )
    };
    let conjunction = clean().and(noisy());
    let first = engine
        .submit(&ds, &QueryRequest::expr_scan(conjunction.clone(), cost))
        .expect("conjunction must run");
    assert!(first.plan_feasible);
    assert_eq!(first.summary.precision, 1.0, "exact evaluation");
    assert!(first.counts.evaluated > 0);
    assert!(
        first.counts.evaluated < 2 * ds.table.num_rows() as u64,
        "short-circuiting must save conjunct probes"
    );
    // The returned set matches a per-row reference evaluation.
    let reference: Vec<u32> = (0..ds.table.num_rows())
        .filter(|&r| conjunction.evaluate(&ds.table, r))
        .map(|r| r as u32)
        .collect();
    assert_eq!(first.returned, reference);

    // A *disjunction* over the same leaves: its leaf probes were largely
    // paid for by the conjunction and arrive as cross-query reuse.
    let disjunction = clean().or(noisy());
    let second = engine
        .submit(&ds, &QueryRequest::expr_scan(disjunction, cost))
        .expect("disjunction must run");
    assert!(
        second.counts.reuse_hits > 0,
        "session cache must share leaf answers across expressions: {:?}",
        second.counts
    );

    // The identical conjunction again: a whole-query memo hit.
    let replay = engine
        .submit(&ds, &QueryRequest::expr_scan(conjunction, cost))
        .unwrap();
    assert_eq!(replay.returned, first.returned);
    assert_eq!(engine.stats().result_hits, 1);
}

#[test]
fn optimized_expr_scan_matches_static_and_learns_across_cache_clears() {
    let ds = dataset(2_000, 7);
    let engine = QueryEngine::new();
    let cost = CostModel::PAPER_DEFAULT;
    // Equal declared costs, wildly different pass rates: `common` accepts
    // a small-flip majority (~80%+), `rare` is a triple conjunction
    // (~10%). Written common-first, the static stage order is pessimal.
    let common = || {
        Pred::udf(expred::udf::NoisyUdf::new(
            OracleUdf::new(LABEL_COLUMN),
            0.9,
            13,
        ))
    };
    let rare = || {
        Pred::udf(expred::udf::ConjunctionUdf::new(vec![
            Box::new(OracleUdf::new(LABEL_COLUMN)),
            Box::new(expred::udf::NoisyUdf::new(
                OracleUdf::new(LABEL_COLUMN),
                0.5,
                11,
            )),
            Box::new(expred::udf::NoisyUdf::new(
                OracleUdf::new(LABEL_COLUMN),
                0.5,
                12,
            )),
        ]))
    };
    let expr = || common().and(rare());

    // Static submit: pays the written order and, as a side effect, feeds
    // the session's selectivity tracker both leaves' pass rates.
    let fixed = engine
        .submit(&ds, &QueryRequest::expr_scan(expr(), cost))
        .unwrap();
    // Optimized submit: identical rows, distinct memo identity (no hit).
    let optimized = engine
        .submit(&ds, &QueryRequest::expr_scan_optimized(expr(), cost))
        .unwrap();
    assert_eq!(optimized.returned, fixed.returned, "answers must not move");
    assert_eq!(engine.stats().result_hits, 0, "distinct request identities");

    // Drop every cached answer; the selectivity statistics survive by
    // design, so the re-run pays fresh evaluations in the learned order.
    engine.clear_caches();
    let relearned = engine
        .submit(&ds, &QueryRequest::expr_scan_optimized(expr(), cost))
        .unwrap();
    assert_eq!(relearned.returned, fixed.returned);
    assert!(
        relearned.counts.evaluated < fixed.counts.evaluated,
        "rare-first ordering must bill fewer fresh evaluations \
         (learned {} vs static {})",
        relearned.counts.evaluated,
        fixed.counts.evaluated
    );
}

#[test]
fn submit_memoizes_and_dedups_like_run() {
    // The cold-race waiter table works for submit-built requests.
    use std::time::Duration;
    let ds = dataset(1_000, 8);
    let engine = QueryEngine::new().with_udf_latency(Duration::from_micros(100));
    let request = QueryRequest::naive(QuerySpec::paper_default()).with_seed(3);
    let barrier = std::sync::Barrier::new(4);
    let outcomes: Vec<RunOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    engine.submit(&ds, &request).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for outcome in &outcomes[1..] {
        assert_eq!(outcome.returned, outcomes[0].returned);
    }
    let stats = engine.stats();
    assert_eq!(stats.queries, 4);
    assert_eq!(
        stats.result_hits + stats.dedup_joins,
        3,
        "every non-leader rides the memo or the waiter table"
    );
    assert_eq!(
        engine.session_counts().evaluated,
        outcomes[0].counts.evaluated,
        "the storm bills exactly one run"
    );
}
