//! Durability proof suite: the persistence tier must be *invisible*
//! except in the bill.
//!
//! * Kill-and-rehydrate (property): an engine that persisted, died, and
//!   rebooted answers byte-identically to a control engine that never
//!   died — and rehydrated rows charge **zero** fresh `o_e`. The bill is
//!   conserved exactly: every row is paid for once, in whichever process
//!   first evaluated it, and never again.
//! * `clear_caches` tombstones the durable tier: clear + restart must
//!   not resurrect a single answer.
//! * A rehydrated row tier feeds the result memo the same identities as
//!   fresh evaluation, so repeats after a restart still memo-hit.
//! * Persisted write timestamps make the cache TTL survive restarts:
//!   a reboot past the TTL refuses the stale answers a generous TTL
//!   happily loads.

use expred::core::{PersistConfig, Query, QueryEngine, QuerySpec};
use expred::table::datasets::{Dataset, DatasetSpec, PROSPER};
use expred::udf::CostModel;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A fresh scratch directory per call — process id plus a counter, so
/// parallel tests and repeated proptest cases never collide.
fn unique_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "expred-persist-proof-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn prosper(rows: usize, seed: u64) -> Dataset {
    Dataset::generate(DatasetSpec { rows, ..PROSPER }, seed)
}

/// Memo-less persistent engine: reuse must come from the row tier, so
/// every assertion below exercises rehydration rather than the memo.
fn persistent(dir: &Path) -> QueryEngine {
    QueryEngine::new()
        .with_result_capacity(0)
        .with_persistence(PersistConfig::new(dir))
        .expect("open persistence")
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(5))]

    // Property: for random tables, contracts, and query seeds, the
    // kill-and-rehydrate engine B is indistinguishable from the control
    // engine C that never died — byte-identical outcomes, zero fresh
    // `o_e` for rehydrated rows, and an exactly conserved bill.
    #[test]
    fn kill_and_rehydrate_is_byte_identical_and_bills_each_row_once(
        table_seed in 0u64..40,
        warm_seed in 0u64..1_000,
        q_seed in 0u64..1_000,
        beta in 0.6f64..0.95,
    ) {
        let dir = unique_dir("prop");
        let ds = prosper(600, table_seed);
        let spec = QuerySpec::try_new(0.8, beta, 0.8, CostModel::PAPER_DEFAULT)
            .expect("generated specs are in range");
        let warm = Query::Naive(spec);
        let q = Query::Naive(spec);

        // Engine A pays for the session, flushes, and "dies".
        let a = persistent(&dir);
        a.run(&ds, &warm, warm_seed);
        let a_q = a.run(&ds, &q, q_seed);
        let a_bill = a.session_counts();
        a.flush_persistence().expect("flush before the kill");
        drop(a);

        // Control C: the same session, never killed. Its third run
        // replays Q over the fully warm cache — exactly the state B's
        // rehydration must reconstruct (W's rows ∪ Q's fresh rows).
        let c = QueryEngine::new().with_result_capacity(0);
        c.run(&ds, &warm, warm_seed);
        let c_q = c.run(&ds, &q, q_seed);
        let c_bill = c.session_counts();
        let c_warm_q = c.run(&ds, &q, q_seed);

        // While alive, A matched C exactly.
        assert_eq!(&a_q.returned, &c_q.returned);
        assert_eq!(a_q.counts, c_q.counts);
        assert_eq!(a_bill, c_bill);

        // Engine B reboots over A's directory.
        let b = persistent(&dir);
        let b_q = b.run(&ds, &q, q_seed);
        assert_eq!(&b_q.returned, &c_warm_q.returned,
            "restart changed the answer");
        assert_eq!(b_q.counts, c_warm_q.counts);
        assert_eq!(b_q.cost, c_warm_q.cost);
        assert_eq!(b_q.summary, c_warm_q.summary);

        // The billing contract: rehydrated rows charge zero fresh o_e,
        // so across both processes every row billed exactly once.
        assert_eq!(b.session_counts().evaluated, 0,
            "a warm restart must not re-pay o_e");
        assert_eq!(
            a_bill.evaluated + b.session_counts().evaluated,
            c_bill.evaluated,
            "bill not conserved across the restart"
        );
        let stats = b.persist_stats().expect("persistent engine has stats");
        assert!(stats.rehydrated_rows > 0, "nothing was rehydrated");
        assert!(stats.rehydrated_namespaces >= 1);

        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn rehydration_larger_than_the_cache_capacity_does_not_deadlock() {
    let dir = unique_dir("overflow");
    let ds = prosper(600, 21);
    let q = Query::Naive(QuerySpec::paper_default());

    let a = persistent(&dir);
    let cold = a.run(&ds, &q, 5);
    assert!(cold.counts.evaluated > 0);
    a.flush_persistence().expect("flush");
    drop(a);

    // The reboot's cache holds far fewer rows than were persisted, so
    // prefill must evict mid-rehydration — which used to re-offer the
    // evictions to the spill sink and re-enter the persistence layer's
    // registry lock on the thread already holding it for write. Run on a
    // watchdog thread so a regression fails the test instead of hanging
    // the suite.
    let (tx, rx) = std::sync::mpsc::channel();
    let thread_dir = dir.clone();
    std::thread::spawn(move || {
        let b = QueryEngine::new()
            .with_result_capacity(0)
            .with_persistence(PersistConfig::new(&thread_dir))
            .expect("open persistence")
            .with_cache_capacity(32);
        let _ = tx.send(b.run(&ds, &q, 5));
    });
    let warm = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("rehydration deadlocked (or died) under an over-capacity prefill");
    // Evictions mean some rows are re-bought, but never a wrong answer.
    assert_eq!(warm.returned, cold.returned);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_compacts_shed_wal_records_so_the_restart_stays_free() {
    let dir = unique_dir("shed");
    let q = Query::Naive(QuerySpec::paper_default());
    // A one-record queue guarantees shedding under any real workload,
    // and auto-compaction is off so only the drain itself can get the
    // shed records (which live solely in the in-memory index) to disk.
    let cfg = || {
        PersistConfig::new(&dir)
            .with_queue_capacity(1)
            .with_compact_after(0)
    };

    let a = QueryEngine::new()
        .with_result_capacity(0)
        .with_persistence(cfg())
        .expect("open persistence");
    let mut datasets = Vec::new();
    for seed in 0..50u64 {
        let ds = prosper(400, seed);
        a.run(&ds, &q, seed);
        datasets.push(ds);
        if a.persist_stats().expect("stats").shed > 0 {
            break;
        }
    }
    assert!(
        a.persist_stats().expect("stats").shed > 0,
        "workload never tripped the queue bound; widen the flood"
    );
    a.flush_persistence().expect("graceful drain");
    drop(a);

    let b = QueryEngine::new()
        .with_result_capacity(0)
        .with_persistence(cfg())
        .expect("reopen");
    for (seed, ds) in datasets.iter().enumerate() {
        b.run(ds, &q, seed as u64);
    }
    assert_eq!(
        b.session_counts().evaluated,
        0,
        "shed WAL records lost across a graceful drain (flush must compact)"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clear_caches_tombstones_the_disk_so_restart_cannot_resurrect() {
    let dir = unique_dir("tombstone");
    let ds = prosper(500, 9);
    let q = Query::Naive(QuerySpec::paper_default());

    let a = persistent(&dir);
    let cold = a.run(&ds, &q, 3);
    assert!(cold.counts.evaluated > 0, "the cold run must pay");
    a.flush_persistence().expect("flush");
    a.clear_caches();
    drop(a);

    let b = persistent(&dir);
    let again = b.run(&ds, &q, 3);
    assert_eq!(
        b.persist_stats().expect("stats").rehydrated_rows,
        0,
        "a tombstoned directory must rehydrate nothing"
    );
    assert_eq!(
        again.counts.reuse_hits, 0,
        "cleared answers resurrected across the restart"
    );
    assert_eq!(
        again.counts.evaluated, cold.counts.evaluated,
        "the post-clear run must re-pay the full cold bill"
    );
    assert_eq!(again.returned, cold.returned, "answers are still answers");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn rehydrated_rows_feed_the_result_memo_the_same_identity_as_fresh() {
    let dir = unique_dir("memo");
    let ds = prosper(500, 11);
    let q = Query::Naive(QuerySpec::paper_default());

    // Memo ON here: the point is the interaction between tiers.
    let a = QueryEngine::new()
        .with_persistence(PersistConfig::new(&dir))
        .expect("open persistence");
    a.run(&ds, &q, 1);
    let a_q = a.run(&ds, &q, 2);
    a.flush_persistence().expect("flush");
    drop(a);

    let b = QueryEngine::new()
        .with_persistence(PersistConfig::new(&dir))
        .expect("open persistence");
    // First submission computes (the memo is not persisted) — but over
    // rehydrated rows, so it charges nothing fresh.
    let first = b.run(&ds, &q, 2);
    assert_eq!(b.stats().result_hits, 0, "the memo starts cold");
    assert_eq!(first.returned, a_q.returned);
    assert_eq!(first.counts.evaluated, 0, "rehydrated rows are free");
    assert!(first.counts.reuse_hits > 0);
    // The repeat must hit the memo entry that computation wrote: a
    // rehydrated row tier produces the same result-memo identity as
    // fresh evaluation did before the restart.
    let second = b.run(&ds, &q, 2);
    assert_eq!(
        b.stats().result_hits,
        1,
        "rehydrated and fresh submissions must share one memo identity"
    );
    assert_eq!(second.returned, first.returned);
    assert_eq!(second.counts, first.counts);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_ttl_survives_the_restart_via_persisted_timestamps() {
    let dir = unique_dir("ttl");
    let ds = prosper(400, 5);
    let q = Query::Naive(QuerySpec::paper_default());

    let a = persistent(&dir);
    let cold = a.run(&ds, &q, 1);
    assert!(cold.counts.evaluated > 0);
    a.flush_persistence().expect("flush");
    drop(a);

    // Let the persisted answers age past the strict TTL below.
    std::thread::sleep(Duration::from_millis(80));

    // A reboot with a 50 ms TTL must refuse the now-stale answers: the
    // write timestamps persisted with each row survive the restart, so
    // age is measured from the original evaluation, not the reboot.
    let strict = QueryEngine::new()
        .with_result_capacity(0)
        .with_cache_ttl(Duration::from_millis(50))
        .with_persistence(PersistConfig::new(&dir))
        .expect("open persistence");
    let stale = strict.run(&ds, &q, 1);
    assert_eq!(
        strict.persist_stats().expect("stats").rehydrated_rows,
        0,
        "answers older than the TTL must not be rehydrated"
    );
    assert_eq!(stale.counts.reuse_hits, 0, "expired answers served");
    assert_eq!(stale.counts.evaluated, cold.counts.evaluated);
    drop(strict);

    // The same directory under a generous TTL is a normal warm restart.
    let generous = QueryEngine::new()
        .with_result_capacity(0)
        .with_cache_ttl(Duration::from_secs(3_600))
        .with_persistence(PersistConfig::new(&dir))
        .expect("open persistence");
    let warm = generous.run(&ds, &q, 1);
    assert_eq!(warm.counts.evaluated, 0, "within-TTL answers are free");
    assert_eq!(warm.counts.reuse_hits, cold.counts.evaluated);
    assert_eq!(warm.returned, cold.returned);
    let _ = std::fs::remove_dir_all(&dir);
}
