//! Backend-equivalence suite: the `Parallel` and `WorkerPool` executors
//! must be exact drop-ins for `Sequential` — identical result sets,
//! identical accuracy metrics, identical audited costs — for every
//! pipeline, on the bundled datasets, under fixed seeds, and regardless
//! of how the adaptive controller slices drains. Only wall-clock time
//! may differ.

use expred::core::{
    run_intel_sample_adaptive_with, run_intel_sample_ctx, run_intel_sample_with, run_naive_ctx,
    run_naive_with, run_optimal_ctx, run_optimal_with, CorrelationModel, IntelSampleConfig,
    PredictorChoice, QuerySpec, RunOutcome,
};
use expred::exec::{AdaptiveController, ExecContext, Executor, Parallel, Sequential, WorkerPool};
use expred::table::datasets::{Dataset, DatasetSpec, LENDING_CLUB, PROSPER};

fn small(spec: DatasetSpec, rows: usize, seed: u64) -> Dataset {
    Dataset::generate(DatasetSpec { rows, ..spec }, seed)
}

/// Backends under test: inline, oversubscribed, machine-sized, and the
/// persistent work-stealing pool at several widths.
fn backends() -> Vec<Box<dyn Executor>> {
    vec![
        Box::new(Parallel::with_threads(2)),
        Box::new(Parallel::with_threads(7)),
        Box::new(Parallel::new()),
        Box::new(WorkerPool::with_threads(2)),
        Box::new(WorkerPool::with_threads(5)),
        Box::new(WorkerPool::new()),
    ]
}

#[track_caller]
fn assert_identical(sequential: &RunOutcome, parallel: &RunOutcome, what: &str) {
    assert_eq!(
        sequential.returned, parallel.returned,
        "{what}: result sets differ"
    );
    assert_eq!(
        sequential.counts, parallel.counts,
        "{what}: audited action counts differ"
    );
    assert_eq!(sequential.cost, parallel.cost, "{what}: costs differ");
    assert_eq!(
        sequential.summary, parallel.summary,
        "{what}: precision/recall differ"
    );
    assert_eq!(
        sequential.num_groups, parallel.num_groups,
        "{what}: group counts differ"
    );
    assert_eq!(
        sequential.plan_feasible, parallel.plan_feasible,
        "{what}: feasibility verdicts differ"
    );
}

#[test]
fn naive_is_backend_invariant() {
    let ds = small(PROSPER, 4_000, 1);
    let spec = QuerySpec::paper_default();
    for seed in [1u64, 99] {
        let want = run_naive_with(&ds, &spec, seed, &Sequential);
        for backend in backends() {
            let got = run_naive_with(&ds, &spec, seed, backend.as_ref());
            assert_identical(&want, &got, &format!("naive seed {seed}"));
        }
    }
}

#[test]
fn optimal_is_backend_invariant() {
    let ds = small(LENDING_CLUB, 5_000, 2);
    let spec = QuerySpec::paper_default();
    for seed in [3u64, 77] {
        let want = run_optimal_with(&ds, &spec, "grade", seed, &Sequential);
        for backend in backends() {
            let got = run_optimal_with(&ds, &spec, "grade", seed, backend.as_ref());
            assert_identical(&want, &got, &format!("optimal seed {seed}"));
        }
    }
}

#[test]
fn intel_sample_fixed_predictor_is_backend_invariant() {
    let ds = small(PROSPER, 5_000, 3);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    for seed in [5u64, 123] {
        let want = run_intel_sample_with(&ds, &cfg, seed, &Sequential);
        for backend in backends() {
            let got = run_intel_sample_with(&ds, &cfg, seed, backend.as_ref());
            assert_identical(&want, &got, &format!("intel-sample seed {seed}"));
        }
    }
}

#[test]
fn intel_sample_auto_predictor_is_backend_invariant() {
    let ds = small(LENDING_CLUB, 4_000, 4);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Auto {
        label_fraction: 0.01,
    });
    let want = run_intel_sample_with(&ds, &cfg, 6, &Sequential);
    for backend in backends() {
        let got = run_intel_sample_with(&ds, &cfg, 6, backend.as_ref());
        assert_identical(&want, &got, "intel-sample auto");
    }
}

#[test]
fn intel_sample_virtual_predictor_is_backend_invariant() {
    let ds = small(PROSPER, 4_000, 5);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Virtual {
        buckets: 10,
        label_fraction: 0.01,
    });
    let want = run_intel_sample_with(&ds, &cfg, 7, &Sequential);
    for backend in backends() {
        let got = run_intel_sample_with(&ds, &cfg, 7, backend.as_ref());
        assert_identical(&want, &got, "intel-sample virtual");
    }
}

#[test]
fn adaptive_pipeline_is_backend_invariant() {
    let ds = small(PROSPER, 3_000, 6);
    let spec = QuerySpec::paper_default();
    let want = run_intel_sample_adaptive_with(
        &ds,
        &spec,
        CorrelationModel::Independent,
        "grade",
        8,
        &Sequential,
    );
    for backend in backends() {
        let got = run_intel_sample_adaptive_with(
            &ds,
            &spec,
            CorrelationModel::Independent,
            "grade",
            8,
            backend.as_ref(),
        );
        assert_identical(&want, &got, "adaptive");
    }
}

#[test]
fn iterative_pipeline_is_backend_invariant() {
    let ds = small(PROSPER, 3_000, 8);
    let spec = QuerySpec::paper_default();
    let run = |backend: &dyn Executor| {
        expred::core::run_intel_sample_iterative_with(
            &ds,
            &spec,
            CorrelationModel::Independent,
            "grade",
            expred::core::SampleSizeRule::Fraction(0.05),
            3,
            9,
            backend,
        )
    };
    let want = run(&Sequential);
    for backend in backends() {
        let got = run(backend.as_ref());
        assert_identical(&want, &got, "iterative");
    }
}

#[test]
fn adaptive_planner_is_outcome_invariant() {
    // The adaptive window may slice drains any way it likes — a tiny
    // floor, a shared controller already convinced the probes are slow,
    // any backend — without moving a single byte of the outcome or bill.
    let ds = small(PROSPER, 4_000, 9);
    let spec = QuerySpec::paper_default();
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    let pool = WorkerPool::with_threads(4);
    let fresh = AdaptiveController::with_floor(3);
    let convinced = AdaptiveController::with_floor(16);
    for _ in 0..16 {
        convinced.observe(1, std::time::Duration::from_millis(2));
    }
    for seed in [2u64, 31] {
        let want_naive = run_naive_with(&ds, &spec, seed, &Sequential);
        let want_intel = run_intel_sample_with(&ds, &cfg, seed, &Sequential);
        let want_optimal = run_optimal_with(&ds, &spec, "grade", seed, &Sequential);
        for (name, ctx) in [
            (
                "fresh floor-3 sequential",
                ExecContext::new(&Sequential).with_adaptive(&fresh),
            ),
            (
                "fresh floor-3 pool",
                ExecContext::new(&pool).with_adaptive(&fresh),
            ),
            (
                "deep-window pool",
                ExecContext::new(&pool).with_adaptive(&convinced),
            ),
            (
                "deep-window tiny budget",
                ExecContext::new(&pool)
                    .with_adaptive(&convinced)
                    .with_max_in_flight(11),
            ),
        ] {
            let what = format!("adaptive {name} seed {seed}");
            assert_identical(&want_naive, &run_naive_ctx(&ds, &spec, seed, &ctx), &what);
            assert_identical(
                &want_intel,
                &run_intel_sample_ctx(&ds, &cfg, seed, &ctx),
                &what,
            );
            assert_identical(
                &want_optimal,
                &run_optimal_ctx(&ds, &spec, "grade", seed, &ctx),
                &what,
            );
        }
    }
}

#[test]
fn engine_on_worker_pool_matches_sequential_engine() {
    // The full session stack — engine, adaptive controller, row cache,
    // result memo — on the pool backend must bill and answer exactly
    // like the sequential engine, query for query.
    use expred::core::{Query, QueryEngine};
    let ds = small(PROSPER, 3_000, 10);
    let spec = QuerySpec::paper_default();
    let queries = [
        Query::Naive(spec),
        Query::IntelSample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
            "grade".into(),
        ))),
        Query::Optimal {
            spec,
            predictor: "grade".into(),
        },
    ];
    let sequential = QueryEngine::new();
    let pooled = QueryEngine::pooled();
    for (i, query) in queries.iter().enumerate() {
        let want = sequential.run(&ds, query, 40 + i as u64);
        let got = pooled.run(&ds, query, 40 + i as u64);
        assert_identical(&want, &got, &format!("engine query {i}"));
    }
    assert_eq!(sequential.session_counts(), pooled.session_counts());
}

#[test]
fn legacy_entry_points_equal_sequential_with() {
    // The parameterless API must stay exactly what it was: Sequential.
    let ds = small(PROSPER, 3_000, 7);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    let legacy = expred::core::run_intel_sample(&ds, &cfg, 11);
    let explicit = run_intel_sample_with(&ds, &cfg, 11, &Sequential);
    assert_identical(&legacy, &explicit, "legacy intel-sample");
}

/// All seven built-in strategies as legacy `Query` values for a given
/// contract.
fn all_seven(spec: QuerySpec) -> Vec<expred::core::Query> {
    use expred::core::Query;
    vec![
        Query::IntelSample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
            "grade".into(),
        ))),
        Query::Naive(spec),
        Query::Optimal {
            spec,
            predictor: "grade".into(),
        },
        Query::Adaptive {
            spec,
            corr: CorrelationModel::Independent,
            predictor: "grade".into(),
        },
        Query::Iterative {
            spec,
            corr: CorrelationModel::Independent,
            predictor: "grade".into(),
            rule: expred::core::SampleSizeRule::Fraction(0.05),
            rounds: 2,
        },
        Query::Learning(spec),
        Query::Multiple {
            spec,
            imputations: 3,
        },
    ]
}

#[test]
fn submit_is_byte_identical_to_legacy_run_for_all_seven_strategies() {
    // The redesigned surface (QueryRequest + Strategy + submit) must be
    // an exact drop-in for the legacy Query-enum run(): identical
    // answers, bills, summaries — and identical memo identities, so a
    // submit after a run is a result-memo hit, not a re-execution.
    use expred::core::{QueryEngine, QueryRequest};
    let ds = small(PROSPER, 2_000, 11);
    let spec = QuerySpec::paper_default();
    for (i, query) in all_seven(spec).iter().enumerate() {
        let seed = 70 + i as u64;
        let legacy_engine = QueryEngine::new();
        let builder_engine = QueryEngine::new();
        let legacy = legacy_engine.run(&ds, query, seed);
        let request = QueryRequest::from_query(query).with_seed(seed);
        let built = builder_engine
            .submit(&ds, &request)
            .expect("valid request must be accepted");
        assert_identical(&legacy, &built, &format!("strategy {i} submit vs run"));
        assert_eq!(
            legacy_engine.session_counts(),
            builder_engine.session_counts(),
            "strategy {i}: identical session bills"
        );
        // Same memo identity: replaying the request on the legacy engine
        // must hit its memo (zero new charges), and vice versa.
        let replay = legacy_engine.submit(&ds, &request).unwrap();
        assert_identical(
            &legacy,
            &replay,
            &format!("strategy {i} cross-route replay"),
        );
        assert_eq!(
            legacy_engine.stats().result_hits,
            1,
            "strategy {i}: submit must hit the memo entry run() wrote"
        );
        let replay = builder_engine.run(&ds, query, seed);
        assert_identical(&built, &replay, &format!("strategy {i} run-after-submit"));
        assert_eq!(builder_engine.stats().result_hits, 1);
    }
}

// Property: for random contracts and seeds, every builder-constructed
// request answers byte-identically to the legacy enum route (fresh
// engines on both sides; the non-ML strategies run per case — the ML
// baselines are covered by the deterministic seven-way test above,
// their training loops are too slow for a property sweep).
proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    #[test]
    fn random_requests_match_legacy_run(
        alpha in 0.55f64..0.9,
        beta in 0.55f64..0.9,
        rho in 0.5f64..0.9,
        seed in 0u64..1_000,
        strategy_index in 0usize..5,
    ) {
        use expred::core::{QueryEngine, QueryRequest};
        let ds = small(PROSPER, 1_500, 13);
        let spec = QuerySpec::try_new(alpha, beta, rho, expred::udf::CostModel::PAPER_DEFAULT)
            .expect("generated specs are in range");
        let query = all_seven(spec).swap_remove(strategy_index);
        let legacy = QueryEngine::new().run(&ds, &query, seed);
        let built = QueryEngine::new()
            .submit(&ds, &QueryRequest::from_query(&query).with_seed(seed))
            .expect("valid request must be accepted");
        assert_identical(&legacy, &built, &format!("proptest strategy {strategy_index}"));
    }
}
