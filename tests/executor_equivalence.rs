//! Backend-equivalence suite: the `Parallel` executor must be an exact
//! drop-in for `Sequential` — identical result sets, identical accuracy
//! metrics, identical audited costs — for every pipeline, on the bundled
//! datasets, under fixed seeds. Only wall-clock time may differ.

use expred::core::{
    run_intel_sample_adaptive_with, run_intel_sample_with, run_naive_with, run_optimal_with,
    CorrelationModel, IntelSampleConfig, PredictorChoice, QuerySpec, RunOutcome,
};
use expred::exec::{Executor, Parallel, Sequential};
use expred::table::datasets::{Dataset, DatasetSpec, LENDING_CLUB, PROSPER};

fn small(spec: DatasetSpec, rows: usize, seed: u64) -> Dataset {
    Dataset::generate(DatasetSpec { rows, ..spec }, seed)
}

/// Backends under test: inline, oversubscribed, and machine-sized.
fn backends() -> Vec<Box<dyn Executor>> {
    vec![
        Box::new(Parallel::with_threads(2)),
        Box::new(Parallel::with_threads(7)),
        Box::new(Parallel::new()),
    ]
}

#[track_caller]
fn assert_identical(sequential: &RunOutcome, parallel: &RunOutcome, what: &str) {
    assert_eq!(
        sequential.returned, parallel.returned,
        "{what}: result sets differ"
    );
    assert_eq!(
        sequential.counts, parallel.counts,
        "{what}: audited action counts differ"
    );
    assert_eq!(sequential.cost, parallel.cost, "{what}: costs differ");
    assert_eq!(
        sequential.summary, parallel.summary,
        "{what}: precision/recall differ"
    );
    assert_eq!(
        sequential.num_groups, parallel.num_groups,
        "{what}: group counts differ"
    );
    assert_eq!(
        sequential.plan_feasible, parallel.plan_feasible,
        "{what}: feasibility verdicts differ"
    );
}

#[test]
fn naive_is_backend_invariant() {
    let ds = small(PROSPER, 4_000, 1);
    let spec = QuerySpec::paper_default();
    for seed in [1u64, 99] {
        let want = run_naive_with(&ds, &spec, seed, &Sequential);
        for backend in backends() {
            let got = run_naive_with(&ds, &spec, seed, backend.as_ref());
            assert_identical(&want, &got, &format!("naive seed {seed}"));
        }
    }
}

#[test]
fn optimal_is_backend_invariant() {
    let ds = small(LENDING_CLUB, 5_000, 2);
    let spec = QuerySpec::paper_default();
    for seed in [3u64, 77] {
        let want = run_optimal_with(&ds, &spec, "grade", seed, &Sequential);
        for backend in backends() {
            let got = run_optimal_with(&ds, &spec, "grade", seed, backend.as_ref());
            assert_identical(&want, &got, &format!("optimal seed {seed}"));
        }
    }
}

#[test]
fn intel_sample_fixed_predictor_is_backend_invariant() {
    let ds = small(PROSPER, 5_000, 3);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    for seed in [5u64, 123] {
        let want = run_intel_sample_with(&ds, &cfg, seed, &Sequential);
        for backend in backends() {
            let got = run_intel_sample_with(&ds, &cfg, seed, backend.as_ref());
            assert_identical(&want, &got, &format!("intel-sample seed {seed}"));
        }
    }
}

#[test]
fn intel_sample_auto_predictor_is_backend_invariant() {
    let ds = small(LENDING_CLUB, 4_000, 4);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Auto {
        label_fraction: 0.01,
    });
    let want = run_intel_sample_with(&ds, &cfg, 6, &Sequential);
    for backend in backends() {
        let got = run_intel_sample_with(&ds, &cfg, 6, backend.as_ref());
        assert_identical(&want, &got, "intel-sample auto");
    }
}

#[test]
fn intel_sample_virtual_predictor_is_backend_invariant() {
    let ds = small(PROSPER, 4_000, 5);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Virtual {
        buckets: 10,
        label_fraction: 0.01,
    });
    let want = run_intel_sample_with(&ds, &cfg, 7, &Sequential);
    for backend in backends() {
        let got = run_intel_sample_with(&ds, &cfg, 7, backend.as_ref());
        assert_identical(&want, &got, "intel-sample virtual");
    }
}

#[test]
fn adaptive_pipeline_is_backend_invariant() {
    let ds = small(PROSPER, 3_000, 6);
    let spec = QuerySpec::paper_default();
    let want = run_intel_sample_adaptive_with(
        &ds,
        &spec,
        CorrelationModel::Independent,
        "grade",
        8,
        &Sequential,
    );
    for backend in backends() {
        let got = run_intel_sample_adaptive_with(
            &ds,
            &spec,
            CorrelationModel::Independent,
            "grade",
            8,
            backend.as_ref(),
        );
        assert_identical(&want, &got, "adaptive");
    }
}

#[test]
fn iterative_pipeline_is_backend_invariant() {
    let ds = small(PROSPER, 3_000, 8);
    let spec = QuerySpec::paper_default();
    let run = |backend: &dyn Executor| {
        expred::core::run_intel_sample_iterative_with(
            &ds,
            &spec,
            CorrelationModel::Independent,
            "grade",
            expred::core::SampleSizeRule::Fraction(0.05),
            3,
            9,
            backend,
        )
    };
    let want = run(&Sequential);
    for backend in backends() {
        let got = run(backend.as_ref());
        assert_identical(&want, &got, "iterative");
    }
}

#[test]
fn legacy_entry_points_equal_sequential_with() {
    // The parameterless API must stay exactly what it was: Sequential.
    let ds = small(PROSPER, 3_000, 7);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    let legacy = expred::core::run_intel_sample(&ds, &cfg, 11);
    let explicit = run_intel_sample_with(&ds, &cfg, 11, &Sequential);
    assert_identical(&legacy, &explicit, "legacy intel-sample");
}
