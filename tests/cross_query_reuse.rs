//! Cross-query reuse suite: the acceptance contract of the session layer.
//!
//! * An *identical* repeated query through one [`QueryEngine`] charges
//!   zero additional `o_e` (the result memo answers it outright).
//! * Even with the result memo disabled, the row-tier [`CacheStore`]
//!   answers a repeated naive query entirely from reuse.
//! * Overlapping-but-different queries re-pay `o_e` only for rows no
//!   earlier query evaluated, without changing any answer.
//! * Single-query outcomes are byte-identical to the pre-session
//!   pipelines (cold engine == legacy entry point).

use expred::core::{
    run_intel_sample, run_learning, run_naive, IntelSampleConfig, PredictorChoice, Query,
    QueryEngine, QuerySpec,
};
use expred::exec::Parallel;
use expred::table::datasets::{Dataset, DatasetSpec, PROSPER};

fn small_prosper(seed: u64) -> Dataset {
    Dataset::generate(
        DatasetSpec {
            rows: 4_000,
            ..PROSPER
        },
        seed,
    )
}

fn intel(predictor: &str) -> Query {
    Query::IntelSample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
        predictor.into(),
    )))
}

#[test]
fn identical_query_twice_charges_zero_additional_oe() {
    let ds = small_prosper(1);
    let engine = QueryEngine::new();
    let first = engine.run(&ds, &intel("grade"), 42);
    let evals_after_first = engine.session_counts().evaluated;
    assert!(
        evals_after_first > 0,
        "the first run must pay for something"
    );

    let second = engine.run(&ds, &intel("grade"), 42);
    assert_eq!(
        engine.session_counts().evaluated,
        evals_after_first,
        "the identical second run must charge zero additional o_e"
    );
    assert_eq!(first.returned, second.returned);
    assert_eq!(first.summary, second.summary);
    assert_eq!(engine.stats().result_hits, 1);
}

#[test]
fn row_tier_alone_also_makes_identical_naive_queries_free() {
    // Disable the result memo: reuse must come from the CacheStore.
    let ds = small_prosper(2);
    let engine = QueryEngine::new().with_result_capacity(0);
    let spec = QuerySpec::paper_default();
    let first = engine.run(&ds, &Query::Naive(spec), 7);
    let second = engine.run(&ds, &Query::Naive(spec), 7);
    assert_eq!(second.counts.evaluated, 0, "same β-fraction, all cached");
    assert_eq!(second.counts.reuse_hits, first.counts.evaluated);
    assert_eq!(first.returned, second.returned);
    assert_eq!(engine.stats().result_hits, 0, "the memo was off");
}

#[test]
fn overlapping_workload_pays_only_for_fresh_rows() {
    let ds = small_prosper(3);
    let engine = QueryEngine::new();
    let spec = QuerySpec::paper_default();
    engine.run(&ds, &Query::Naive(spec), 1);

    // A different seed draws a different (heavily overlapping) fraction.
    let warm = engine.run(&ds, &Query::Naive(spec), 2);
    let cold = run_naive(&ds, &spec, 2);
    assert_eq!(
        warm.returned, cold.returned,
        "reuse must not change answers"
    );
    assert_eq!(
        warm.counts.evaluated + warm.counts.reuse_hits,
        cold.counts.evaluated,
        "warm fresh + reused must equal the cache-less bill"
    );
    assert!(
        warm.counts.reuse_hits > cold.counts.evaluated / 2,
        "β = 0.8 fractions overlap heavily; got only {} reuses of {}",
        warm.counts.reuse_hits,
        cold.counts.evaluated
    );
}

#[test]
fn cold_engine_is_byte_identical_to_legacy_pipelines() {
    let ds = small_prosper(4);
    let cfg = IntelSampleConfig::experiment1(PredictorChoice::Fixed("grade".into()));
    for seed in [3u64, 19] {
        let engine = QueryEngine::new();
        let engine_out = engine.run(&ds, &intel("grade"), seed);
        let legacy = run_intel_sample(&ds, &cfg, seed);
        assert_eq!(engine_out.returned, legacy.returned);
        assert_eq!(engine_out.cost, legacy.cost);
        assert_eq!(engine_out.summary, legacy.summary);
        assert_eq!(engine_out.counts.evaluated, legacy.counts.evaluated);
        assert_eq!(engine_out.counts.retrieved, legacy.counts.retrieved);
        assert_eq!(engine_out.counts.cache_hits, legacy.counts.cache_hits);
    }
}

#[test]
fn session_reuse_is_backend_invariant() {
    // The same two-query session on Sequential and Parallel engines must
    // produce identical outcomes and identical bills.
    let ds = small_prosper(5);
    let spec = QuerySpec::paper_default();
    let run_session = |engine: &QueryEngine| {
        let a = engine.run(&ds, &Query::Naive(spec), 1);
        let b = engine.run(&ds, &intel("grade"), 2);
        (a, b)
    };
    let seq = QueryEngine::new();
    let par = QueryEngine::with_executor(Box::new(Parallel::with_threads(4)));
    let (a_seq, b_seq) = run_session(&seq);
    let (a_par, b_par) = run_session(&par);
    assert_eq!(a_seq.returned, a_par.returned);
    assert_eq!(a_seq.counts, a_par.counts);
    assert_eq!(b_seq.returned, b_par.returned);
    assert_eq!(b_seq.counts, b_par.counts);
    assert_eq!(seq.session_counts(), par.session_counts());
}

#[test]
fn ml_baseline_reuses_labels_from_earlier_queries() {
    // The Learning baseline now labels through the runtime, so a session
    // that already evaluated much of the table makes its seed cheaper.
    let ds = small_prosper(6);
    let spec = QuerySpec::paper_default();
    let cold = run_learning(&ds, &spec, 11);

    let engine = QueryEngine::new();
    engine.run(&ds, &Query::Naive(spec), 1); // warms ~80% of the table
    let warm = engine.run(&ds, &Query::Learning(spec), 11);
    assert_eq!(warm.returned, cold.returned, "labels are labels");
    assert_eq!(
        warm.counts.evaluated + warm.counts.reuse_hits,
        cold.counts.evaluated
    );
    assert!(
        warm.counts.reuse_hits > 0,
        "training labels must come from the session cache"
    );
}

#[test]
fn mutating_the_table_invalidates_the_session() {
    let mut ds = small_prosper(7);
    let spec = QuerySpec::paper_default();
    let engine = QueryEngine::new();
    let first = engine.run(&ds, &Query::Naive(spec), 3);

    // Append one row: same DatasetSpec, new table version.
    let row = ds.table.row(0);
    ds.table.push_row(row).unwrap();
    let after = engine.run(&ds, &Query::Naive(spec), 3);
    assert_eq!(
        after.counts.reuse_hits, 0,
        "a new table version must not serve stale answers"
    );
    assert!(after.counts.evaluated >= first.counts.evaluated);
    assert_eq!(engine.stats().result_hits, 0, "result memo keys moved too");
}
