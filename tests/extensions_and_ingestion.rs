//! Integration tests for the §5 extensions and the CSV ingestion path.

use expred::core::extensions::{
    maximize_recall_under_budget, solve_multi_predicate, solve_select_join, JoinSubgroup,
    MultiCost, PredicatePairGroup,
};
use expred::core::optimize::CorrelationModel;
use expred::core::{
    run_intel_sample, IntelSampleConfig, PredictorChoice, QuerySpec, SampleSizeRule,
};
use expred::table::csv::{read_csv, write_csv};
use expred::table::datasets::{Dataset, DatasetSpec, PROSPER};
use expred::udf::CostModel;

#[test]
fn budget_recall_curve_is_monotone() {
    let ds = Dataset::generate(
        DatasetSpec {
            rows: 6_000,
            ..PROSPER
        },
        8,
    );
    let stats = ds.group_stats("grade");
    let sizes: Vec<f64> = stats.per_group.iter().map(|&(t, _)| t as f64).collect();
    let sels: Vec<f64> = stats.per_group.iter().map(|&(_, s)| s).collect();
    let mut prev = -1.0;
    for budget in [500.0, 2_000.0, 8_000.0, 20_000.0] {
        let out =
            maximize_recall_under_budget(&sizes, &sels, 0.8, 0.8, CostModel::PAPER_DEFAULT, budget)
                .expect("affordable");
        assert!(
            out.achieved_beta + 1e-9 >= prev,
            "recall curve must be nondecreasing in budget"
        );
        prev = out.achieved_beta;
    }
    assert!(
        prev > 0.3,
        "a 20k budget should buy real recall, got {prev}"
    );
}

#[test]
fn multi_predicate_cheaper_than_eval_both_everywhere() {
    let groups = vec![
        PredicatePairGroup {
            size: 2_000.0,
            s1: 0.9,
            s2: 0.9,
        },
        PredicatePairGroup {
            size: 2_000.0,
            s1: 0.4,
            s2: 0.5,
        },
    ];
    let cost = MultiCost {
        retrieve: 1.0,
        eval1: 3.0,
        eval2: 3.0,
    };
    let plan = solve_multi_predicate(&groups, 0.8, 0.8, &cost).expect("feasible");
    let naive: f64 = groups
        .iter()
        .map(|g| g.size * (cost.retrieve + cost.eval1 + g.s1 * cost.eval2))
        .sum();
    assert!(
        plan.expected_cost < naive,
        "joint plan {} should undercut naive {}",
        plan.expected_cost,
        naive
    );
}

#[test]
fn join_weighting_changes_the_plan() {
    // Same statistics; flipping which subgroup carries the fan-out must
    // flip where the retrieval probability goes.
    let forward = vec![
        JoinSubgroup {
            size: 500.0,
            sel: 0.5,
            fanout: 8.0,
        },
        JoinSubgroup {
            size: 500.0,
            sel: 0.5,
            fanout: 1.0,
        },
    ];
    let reversed = vec![
        JoinSubgroup {
            size: 500.0,
            sel: 0.5,
            fanout: 1.0,
        },
        JoinSubgroup {
            size: 500.0,
            sel: 0.5,
            fanout: 8.0,
        },
    ];
    let a = solve_select_join(&forward, 0.0, 0.5, &CostModel::PAPER_DEFAULT).unwrap();
    let b = solve_select_join(&reversed, 0.0, 0.5, &CostModel::PAPER_DEFAULT).unwrap();
    assert!(a.r()[0] > a.r()[1]);
    assert!(b.r()[1] > b.r()[0]);
}

#[test]
fn csv_round_trip_preserves_pipeline_behaviour() {
    // Export a dataset to CSV, re-ingest it, and run the same seeded
    // pipeline on both: the costs and answers must agree exactly.
    let ds = Dataset::generate(
        DatasetSpec {
            rows: 3_000,
            ..PROSPER
        },
        9,
    );
    let mut buf = Vec::new();
    write_csv(&ds.table, &mut buf).expect("serialize");
    let round_tripped = read_csv(std::io::Cursor::new(buf)).expect("parse");
    assert_eq!(round_tripped.num_rows(), ds.table.num_rows());

    let ds2 = Dataset {
        table: round_tripped,
        spec: ds.spec,
        seed: ds.seed,
    };
    let cfg = IntelSampleConfig {
        spec: QuerySpec::paper_default(),
        rule: SampleSizeRule::Fraction(0.1),
        corr: CorrelationModel::Independent,
        predictor: PredictorChoice::Fixed("grade".into()),
    };
    let a = run_intel_sample(&ds, &cfg, 77);
    let b = run_intel_sample(&ds2, &cfg, 77);
    assert_eq!(a.counts, b.counts, "ingested data must behave identically");
    assert_eq!(a.returned, b.returned);
}
