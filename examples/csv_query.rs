//! A miniature end-to-end application: approximate UDF selection over a
//! CSV file from the command line.
//!
//! ```text
//! cargo run --release --example csv_query -- \
//!     [path.csv] [label_column] [alpha] [beta] [rho]
//! ```
//!
//! With no arguments, the example writes the Prosper clone to a temporary
//! CSV first, then queries it — demonstrating the full ingestion path:
//! CSV → Table → predictor selection → sampling → optimization →
//! execution → audited cost report.

use expred::core::optimize::CorrelationModel;
use expred::core::{
    IntelSampleConfig, PredictorChoice, QueryEngine, QueryRequest, QuerySpec, SampleSizeRule,
};
use expred::table::csv::{read_csv, write_csv};
use expred::table::datasets::{Dataset, DatasetSpec, LABEL_COLUMN, PROSPER};
use expred::udf::CostModel;
use std::io::BufReader;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "approximate UDF selection over a CSV file\n\n\
             usage: cargo run --release --example csv_query -- \\\n\
             \x20   [path.csv label_column [alpha beta rho]]\n\n\
             With no arguments, writes the Prosper clone to a temporary CSV\n\
             first, then queries it."
        );
        return;
    }
    let (path, label, alpha, beta, rho) = match args.len() {
        0 => {
            // Self-contained demo: materialize a clone as CSV.
            let ds = Dataset::generate(
                DatasetSpec {
                    rows: 8_000,
                    ..PROSPER
                },
                7,
            );
            let path = std::env::temp_dir().join("expred_demo.csv");
            let mut file = std::fs::File::create(&path).expect("create temp csv");
            write_csv(&ds.table, &mut file).expect("write csv");
            println!("wrote demo data to {}", path.display());
            (
                path.to_string_lossy().into_owned(),
                LABEL_COLUMN.to_owned(),
                0.8,
                0.8,
                0.8,
            )
        }
        2..=5 => (
            args[0].clone(),
            args[1].clone(),
            args.get(2).map_or(0.8, |v| v.parse().expect("alpha")),
            args.get(3).map_or(0.8, |v| v.parse().expect("beta")),
            args.get(4).map_or(0.8, |v| v.parse().expect("rho")),
        ),
        _ => {
            eprintln!("usage: csv_query [path.csv label_column [alpha beta rho]]");
            std::process::exit(2);
        }
    };

    let file = std::fs::File::open(&path).unwrap_or_else(|e| {
        eprintln!("cannot open {path}: {e}");
        std::process::exit(1);
    });
    let table = read_csv(BufReader::new(file)).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "loaded {} rows x {} columns; schema {}",
        table.num_rows(),
        table.num_columns(),
        table.schema()
    );

    // Wrap the table as a Dataset so the pipelines can run over it. The
    // label column plays the expensive UDF (in a real deployment you would
    // implement `BooleanUdf` for your service call instead).
    let spec_template = DatasetSpec {
        rows: table.num_rows(),
        ..PROSPER
    };
    let ds = Dataset {
        table,
        spec: spec_template,
        seed: 0,
    };

    // User-supplied contract: validate fallibly instead of panicking.
    let spec = match QuerySpec::try_new(alpha, beta, rho, CostModel::PAPER_DEFAULT) {
        Ok(spec) => spec,
        Err(err) => {
            eprintln!("{err}");
            std::process::exit(2);
        }
    };
    if label != LABEL_COLUMN {
        eprintln!(
            "note: this demo expects the UDF answers in a column named {LABEL_COLUMN:?}; \
             got {label:?} — rename the column or adapt the example"
        );
    }
    let cfg = IntelSampleConfig {
        spec,
        rule: SampleSizeRule::Fraction(0.05),
        corr: CorrelationModel::Independent,
        predictor: PredictorChoice::Auto {
            label_fraction: 0.01,
        },
    };
    // Each contestant gets its own engine session: sharing one would let
    // the second query reuse rows the first already paid for and skew
    // the cost comparison.
    let submit = |req: QueryRequest| match QueryEngine::new().submit(&ds, &req.with_seed(1)) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("query failed: {err}");
            std::process::exit(1);
        }
    };
    let intel = submit(QueryRequest::intel_sample(cfg));
    let naive = submit(QueryRequest::naive(spec));

    println!("\nquery: SELECT * WHERE udf(row) = 1 (alpha={alpha}, beta={beta}, rho={rho})");
    println!(
        "intel-sample: {} rows returned | {} UDF calls | precision {:.3} recall {:.3} | cost {:.0}",
        intel.returned.len(),
        intel.counts.evaluated,
        intel.summary.precision,
        intel.summary.recall,
        intel.cost
    );
    println!(
        "naive       : {} rows returned | {} UDF calls | precision {:.3} recall {:.3} | cost {:.0}",
        naive.returned.len(),
        naive.counts.evaluated,
        naive.summary.precision,
        naive.summary.recall,
        naive.cost
    );
    println!(
        "savings     : {:.0}% of UDF calls avoided",
        100.0 * (1.0 - intel.counts.evaluated as f64 / naive.counts.evaluated as f64)
    );
}
