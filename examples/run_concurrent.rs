//! Concurrent sessions: one engine, eight worker threads, one bill.
//!
//! ```text
//! cargo run --release --example run_concurrent [-- --parallel | --pool]
//! ```
//!
//! `QueryEngine::submit` takes `&self` and the engine is `Sync`, so a
//! serving tier shares one engine — one executor, one row cache, one
//! result memo — across all of its worker threads directly. Three
//! serving shapes, one engine each:
//!
//! 1. **Scaling** — eight tenants querying their own tables (100µs
//!    simulated UDF): wall clock drops by roughly the thread count.
//! 2. **Conservation** — eight workers over one *shared* table with
//!    heavily overlapping queries: the session's total demand is
//!    identical to the serial run's, charge for charge; interleavings
//!    only shift rows between "fresh" and "reused" (threads racing on a
//!    cold row may both pay it before either can share).
//! 3. **Repeat storm** — identical requests from every worker are
//!    absorbed by the result memo for free.
//! 4. **Cold storm** — the identical *fresh* request from every worker
//!    at once: cold-race suppression elects one leader, everyone else
//!    joins its in-flight run, and the session is billed exactly once.

use expred::cli::{Backend, ExampleCli};
use expred::core::{QueryEngine, QueryRequest, QuerySpec};
use expred::table::datasets::{Dataset, DatasetSpec, PROSPER};
use std::time::{Duration, Instant};

const THREADS: usize = 8;

fn dataset(rows: usize, seed: u64) -> Dataset {
    Dataset::generate(DatasetSpec { rows, ..PROSPER }, seed)
}

fn main() {
    let backend = ExampleCli::new(
        "run_concurrent",
        "one Sync QueryEngine serving eight worker threads",
    )
    .parse_backend();
    println!("{}", backend.banner());
    let spec = QuerySpec::paper_default();
    let naive = |seed: u64| QueryRequest::naive(spec).with_seed(seed);

    // 1. Scaling: one tenant table per worker, 100µs per fresh o_e.
    let tenants: Vec<Dataset> = (0..THREADS as u64).map(|s| dataset(1_000, s)).collect();
    let serial_engine = backend
        .engine()
        .with_udf_latency(Duration::from_micros(100));
    let start = Instant::now();
    for ds in &tenants {
        serial_engine.submit(ds, &naive(7)).unwrap();
    }
    let serial = start.elapsed();
    let engine = backend
        .engine()
        .with_udf_latency(Duration::from_micros(100));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for ds in &tenants {
            let (engine, naive) = (&engine, &naive);
            scope.spawn(move || engine.submit(ds, &naive(7)).unwrap());
        }
    });
    let concurrent = start.elapsed();
    println!(
        "{THREADS} tenants x 1 naive query, 100µs UDF:\n  serial:    {serial:?}\n  \
         {THREADS} threads: {concurrent:?}  ({:.1}x)",
        serial.as_secs_f64() / concurrent.as_secs_f64()
    );
    assert_eq!(serial_engine.session_counts(), engine.session_counts());

    // 2. Conservation: overlapping queries over one shared table.
    let ds = dataset(2_000, 9);
    let mix: Vec<(QuerySpec, u64)> = (0..24u64)
        .map(|i| {
            let s = if i % 2 == 0 {
                spec
            } else {
                QuerySpec::new(0.7, 0.6, 0.8, spec.cost)
            };
            (s, i)
        })
        .collect();
    let serial_engine = backend.engine();
    for (s, seed) in &mix {
        serial_engine
            .submit(&ds, &QueryRequest::naive(*s).with_seed(*seed))
            .unwrap();
    }
    let engine = backend.engine();
    std::thread::scope(|scope| {
        for chunk in mix.chunks(mix.len().div_ceil(THREADS)) {
            let (engine, ds) = (&engine, &ds);
            scope.spawn(move || {
                for (s, seed) in chunk {
                    engine
                        .submit(ds, &QueryRequest::naive(*s).with_seed(*seed))
                        .unwrap();
                }
            });
        }
    });
    let serial_bill = serial_engine.session_counts();
    let concurrent_bill = engine.session_counts();
    println!("\n24 overlapping queries, one shared table:");
    println!("  serial bill:     {serial_bill}");
    println!("  concurrent bill: {concurrent_bill}");
    assert_eq!(
        serial_bill.demanded(),
        concurrent_bill.demanded(),
        "every demanded row is charged exactly once, whatever the interleaving"
    );
    println!(
        "  demanded either way: {} (interleaving only moves rows between \
         fresh and reused)",
        serial_bill.demanded()
    );

    // 3. A storm of identical repeats: the result memo absorbs all of it.
    let before = engine.session_counts();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (engine, ds, naive) = (&engine, &ds, &naive);
            scope.spawn(move || {
                for _ in 0..100 {
                    engine.submit(ds, &naive(0)).unwrap();
                }
            });
        }
    });
    assert_eq!(engine.session_counts(), before, "repeats must be free");
    let stats = engine.stats();
    println!(
        "\nrepeat storm: {} queries served, {} result-memo hits, zero new o_e",
        stats.queries, stats.result_hits
    );

    // 4. A *cold* identical storm: nothing is memoized yet, every thread
    // submits the same fresh request at once. Cold-race suppression makes
    // one thread the leader; the rest park on the in-flight waiter table
    // and share its outcome — the session bills exactly one run.
    let ds = dataset(2_000, 77);
    let storm_engine = match backend {
        // Default run: show the serving configuration (worker pool).
        Backend::Sequential => QueryEngine::pooled(),
        other => other.engine(),
    }
    .with_udf_latency(Duration::from_micros(100));
    let barrier = std::sync::Barrier::new(THREADS);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let (engine, ds, barrier, naive) = (&storm_engine, &ds, &barrier, &naive);
            scope.spawn(move || {
                barrier.wait();
                engine.submit(ds, &naive(123)).unwrap();
            });
        }
    });
    let stats = storm_engine.stats();
    println!(
        "\ncold identical storm ({THREADS} threads): {} queries, {} joined the \
         in-flight leader, {} memo hits; session billed {} fresh o_e (one run's worth)",
        stats.queries,
        stats.dedup_joins,
        stats.result_hits,
        storm_engine.session_counts().evaluated
    );
}
