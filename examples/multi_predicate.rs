//! Two chained expensive predicates (§5): trading accuracy between UDFs.
//!
//! ```text
//! cargo run --release --example multi_predicate [-- --parallel | --pool]
//! ```
//!
//! `SELECT * FROM listings WHERE is_fraud_free(id) = 1 AND
//! passes_image_check(id) = 1` — both predicates are expensive, and the
//! image check costs twice the fraud check. The joint optimizer decides,
//! per correlation group, whether to return blindly, evaluate one
//! predicate and assume the other, or evaluate both (short-circuited).
//!
//! The demo then runs the predicates themselves as first-class
//! [`PredicateExpr`] requests through a `QueryEngine` session: the
//! conjunction is submitted as one `QueryRequest::expr_scan`, evaluated
//! in staged batches with the cheap predicate first; a follow-up
//! *disjunction* over the same predicates reuses every leaf answer the
//! conjunction already paid for, straight from the session cache.

use expred::cli::ExampleCli;
use expred::core::extensions::{solve_multi_predicate, MultiAction, MultiCost, PredicatePairGroup};
use expred::core::QueryRequest;
use expred::stats::Prng;
use expred::table::datasets::DatasetSpec;
use expred::table::datasets::PROSPER;
use expred::table::{DataType, Field, Schema, Table, Value};
use expred::udf::{CostModel, OracleUdf, Pred};

fn main() {
    let backend = ExampleCli::new(
        "multi_predicate",
        "two chained expensive predicates: joint planning + expression requests",
    )
    .parse_backend();
    println!("{}", backend.banner());
    // Groups from a hypothetical correlated attribute: (size, s1, s2).
    let groups = vec![
        PredicatePairGroup {
            size: 4000.0,
            s1: 0.95,
            s2: 0.90,
        },
        PredicatePairGroup {
            size: 3000.0,
            s1: 0.85,
            s2: 0.60,
        },
        PredicatePairGroup {
            size: 2000.0,
            s1: 0.50,
            s2: 0.80,
        },
        PredicatePairGroup {
            size: 1000.0,
            s1: 0.20,
            s2: 0.30,
        },
    ];
    let cost = MultiCost {
        retrieve: 1.0,
        eval1: 2.0, // fraud check
        eval2: 4.0, // image check
    };
    let (alpha, beta) = (0.85, 0.85);
    let plan = solve_multi_predicate(&groups, alpha, beta, &cost).expect("constraints satisfiable");

    println!("joint plan (alpha = {alpha}, beta = {beta}):");
    println!(
        "{:>5} {:>6} {:>5} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "group", "size", "s1", "s2", "return", "eval-f1", "eval-f2", "both", "discard"
    );
    for (a, g) in groups.iter().enumerate() {
        println!(
            "{:>5} {:>6} {:>5.2} {:>5.2} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            a,
            g.size,
            g.s1,
            g.s2,
            plan.prob(a, MultiAction::Return),
            plan.prob(a, MultiAction::EvalFirst),
            plan.prob(a, MultiAction::EvalSecond),
            plan.prob(a, MultiAction::EvalBoth),
            plan.discard_prob(a),
        );
    }
    println!("\nexpected cost: {:.0}", plan.expected_cost);

    // Contrast: the naive conjunction evaluates both predicates on every
    // tuple (short-circuiting f2 behind f1).
    let naive: f64 = groups
        .iter()
        .map(|g| g.size * (cost.retrieve + cost.eval1 + g.s1 * cost.eval2))
        .sum();
    println!("evaluate-both-everywhere cost: {naive:.0}");
    println!(
        "joint optimization saves {:.0}%",
        100.0 * (1.0 - plan.expected_cost / naive)
    );

    // Runtime demo: the conjunction as a first-class expression request.
    let schema = Schema::new(vec![
        Field::new("fraud_free", DataType::Bool),
        Field::new("image_ok", DataType::Bool),
    ]);
    let mut table = Table::empty(schema);
    let mut rng = Prng::seeded(7);
    for g in &groups {
        let rows = (g.size / 10.0) as usize; // 1:10 scale model
        for _ in 0..rows {
            table
                .push_row(vec![
                    Value::Bool(rng.bernoulli(g.s1)),
                    Value::Bool(rng.bernoulli(g.s2)),
                ])
                .unwrap();
        }
    }
    let num_rows = table.num_rows();
    let ds = expred::table::datasets::Dataset {
        spec: DatasetSpec {
            rows: num_rows,
            ..PROSPER
        },
        table,
        seed: 7,
    };
    let engine = backend.engine();
    // Declared costs order the stages: the 2x-cheaper fraud check runs
    // first, the image check only on its survivors.
    let fraud_free = || Pred::udf_with_cost(OracleUdf::new("fraud_free"), 2.0);
    let image_ok = || Pred::udf_with_cost(OracleUdf::new("image_ok"), 4.0);

    let conjunction = engine
        .submit(
            &ds,
            &QueryRequest::expr_scan(fraud_free().and(image_ok()), CostModel::PAPER_DEFAULT),
        )
        .expect("a fingerprinted expression over existing columns");
    println!(
        "\nexpression request 1: fraud_free AND image_ok over {num_rows} tuples \
         -> {} passed",
        conjunction.returned.len()
    );
    println!("  bill: {}", conjunction.counts);
    println!(
        "  conjunct invocations: {} (vs {} without stage-wise short-circuiting)",
        conjunction.counts.evaluated,
        2 * num_rows
    );

    // A different expression over the same predicates: every leaf answer
    // the conjunction paid for arrives as free cross-query reuse.
    let disjunction = engine
        .submit(
            &ds,
            &QueryRequest::expr_scan(fraud_free().or(image_ok()), CostModel::PAPER_DEFAULT),
        )
        .expect("valid request");
    println!(
        "expression request 2: fraud_free OR image_ok -> {} passed",
        disjunction.returned.len()
    );
    println!(
        "  bill: {}  <- the session cache pre-paid the shared leaves",
        disjunction.counts
    );

    println!("\nsession totals: {}", engine.session_counts());
    println!("engine:         {:?}", engine.stats());
}
