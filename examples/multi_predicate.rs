//! Two chained expensive predicates (§5): trading accuracy between UDFs.
//!
//! ```text
//! cargo run --release --example multi_predicate [-- --parallel | --pool]
//! ```
//!
//! `SELECT * FROM listings WHERE is_fraud_free(id) = 1 AND
//! passes_image_check(id) = 1` — both predicates are expensive, and the
//! image check costs twice the fraud check. The joint optimizer decides,
//! per correlation group, whether to return blindly, evaluate one
//! predicate and assume the other, or evaluate both (short-circuited).
//! The demo then runs the conjunction over a synthetic table through the
//! `expred-exec` runtime — staged, batched short-circuiting; with
//! `--parallel` each stage fans out across scoped worker threads, and
//! with `--pool` through a persistent work-stealing `WorkerPool`.

use expred::core::extensions::{
    evaluate_conjunction_batch, solve_multi_predicate, MultiAction, MultiCost, PredicatePairGroup,
};
use expred::exec::{Executor, Parallel, Sequential, WorkerPool};
use expred::stats::Prng;
use expred::table::{DataType, Field, Schema, Table, Value};
use expred::udf::{ConjunctionUdf, CostTracker, OracleUdf};

fn main() {
    let executor: Box<dyn Executor> = if std::env::args().any(|a| a == "--pool") {
        let backend = WorkerPool::new();
        println!(
            "executor backend: worker_pool ({} persistent workers)",
            backend.threads()
        );
        Box::new(backend)
    } else if std::env::args().any(|a| a == "--parallel") {
        let backend = Parallel::new();
        println!("executor backend: parallel ({} threads)", backend.threads());
        Box::new(backend)
    } else {
        println!("executor backend: sequential (pass --parallel or --pool to fan out)");
        Box::new(Sequential)
    };
    // Groups from a hypothetical correlated attribute: (size, s1, s2).
    let groups = vec![
        PredicatePairGroup {
            size: 4000.0,
            s1: 0.95,
            s2: 0.90,
        },
        PredicatePairGroup {
            size: 3000.0,
            s1: 0.85,
            s2: 0.60,
        },
        PredicatePairGroup {
            size: 2000.0,
            s1: 0.50,
            s2: 0.80,
        },
        PredicatePairGroup {
            size: 1000.0,
            s1: 0.20,
            s2: 0.30,
        },
    ];
    let cost = MultiCost {
        retrieve: 1.0,
        eval1: 2.0, // fraud check
        eval2: 4.0, // image check
    };
    let (alpha, beta) = (0.85, 0.85);
    let plan = solve_multi_predicate(&groups, alpha, beta, &cost).expect("constraints satisfiable");

    println!("joint plan (alpha = {alpha}, beta = {beta}):");
    println!(
        "{:>5} {:>6} {:>5} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "group", "size", "s1", "s2", "return", "eval-f1", "eval-f2", "both", "discard"
    );
    for (a, g) in groups.iter().enumerate() {
        println!(
            "{:>5} {:>6} {:>5.2} {:>5.2} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            a,
            g.size,
            g.s1,
            g.s2,
            plan.prob(a, MultiAction::Return),
            plan.prob(a, MultiAction::EvalFirst),
            plan.prob(a, MultiAction::EvalSecond),
            plan.prob(a, MultiAction::EvalBoth),
            plan.discard_prob(a),
        );
    }
    println!("\nexpected cost: {:.0}", plan.expected_cost);

    // Contrast: the naive conjunction evaluates both predicates on every
    // tuple (short-circuiting f2 behind f1).
    let naive: f64 = groups
        .iter()
        .map(|g| g.size * (cost.retrieve + cost.eval1 + g.s1 * cost.eval2))
        .sum();
    println!("evaluate-both-everywhere cost: {naive:.0}");
    println!(
        "joint optimization saves {:.0}%",
        100.0 * (1.0 - plan.expected_cost / naive)
    );

    // Runtime demo: evaluate the conjunction itself over a synthetic
    // table, stage by stage, through the chosen executor backend.
    let schema = Schema::new(vec![
        Field::new("fraud_free", DataType::Bool),
        Field::new("image_ok", DataType::Bool),
    ]);
    let mut table = Table::empty(schema);
    let mut rng = Prng::seeded(7);
    for g in &groups {
        let rows = (g.size / 10.0) as usize; // 1:10 scale model
        for _ in 0..rows {
            table
                .push_row(vec![
                    Value::Bool(rng.bernoulli(g.s1)),
                    Value::Bool(rng.bernoulli(g.s2)),
                ])
                .unwrap();
        }
    }
    let conjunction = ConjunctionUdf::new(vec![
        Box::new(OracleUdf::new("fraud_free")),
        Box::new(OracleUdf::new("image_ok")),
    ]);
    let tracker = CostTracker::new();
    let rows: Vec<usize> = (0..table.num_rows()).collect();
    let answers =
        evaluate_conjunction_batch(&conjunction, &table, &rows, &tracker, executor.as_ref());
    let passed = answers.iter().filter(|&&a| a).count();
    let counts = tracker.snapshot();
    println!(
        "\nstaged batched evaluation over {} tuples: {} passed both predicates",
        rows.len(),
        passed
    );
    println!("bill breakdown: {counts}");
    println!(
        "conjunct invocations: {} (vs {} without stage-wise short-circuiting)",
        counts.evaluated,
        2 * rows.len()
    );
}
