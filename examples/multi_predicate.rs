//! Two chained expensive predicates (§5): trading accuracy between UDFs.
//!
//! ```text
//! cargo run --release --example multi_predicate
//! ```
//!
//! `SELECT * FROM listings WHERE is_fraud_free(id) = 1 AND
//! passes_image_check(id) = 1` — both predicates are expensive, and the
//! image check costs twice the fraud check. The joint optimizer decides,
//! per correlation group, whether to return blindly, evaluate one
//! predicate and assume the other, or evaluate both (short-circuited).

use expred::core::extensions::{
    solve_multi_predicate, MultiAction, MultiCost, PredicatePairGroup,
};

fn main() {
    // Groups from a hypothetical correlated attribute: (size, s1, s2).
    let groups = vec![
        PredicatePairGroup { size: 4000.0, s1: 0.95, s2: 0.90 },
        PredicatePairGroup { size: 3000.0, s1: 0.85, s2: 0.60 },
        PredicatePairGroup { size: 2000.0, s1: 0.50, s2: 0.80 },
        PredicatePairGroup { size: 1000.0, s1: 0.20, s2: 0.30 },
    ];
    let cost = MultiCost {
        retrieve: 1.0,
        eval1: 2.0, // fraud check
        eval2: 4.0, // image check
    };
    let (alpha, beta) = (0.85, 0.85);
    let plan = solve_multi_predicate(&groups, alpha, beta, &cost)
        .expect("constraints satisfiable");

    println!("joint plan (alpha = {alpha}, beta = {beta}):");
    println!(
        "{:>5} {:>6} {:>5} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "group", "size", "s1", "s2", "return", "eval-f1", "eval-f2", "both", "discard"
    );
    for (a, g) in groups.iter().enumerate() {
        println!(
            "{:>5} {:>6} {:>5.2} {:>5.2} | {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            a,
            g.size,
            g.s1,
            g.s2,
            plan.prob(a, MultiAction::Return),
            plan.prob(a, MultiAction::EvalFirst),
            plan.prob(a, MultiAction::EvalSecond),
            plan.prob(a, MultiAction::EvalBoth),
            plan.discard_prob(a),
        );
    }
    println!("\nexpected cost: {:.0}", plan.expected_cost);

    // Contrast: the naive conjunction evaluates both predicates on every
    // tuple (short-circuiting f2 behind f1).
    let naive: f64 = groups
        .iter()
        .map(|g| g.size * (cost.retrieve + cost.eval1 + g.s1 * cost.eval2))
        .sum();
    println!("evaluate-both-everywhere cost: {naive:.0}");
    println!(
        "joint optimization saves {:.0}%",
        100.0 * (1.0 - plan.expected_cost / naive)
    );
}
