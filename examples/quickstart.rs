//! Quickstart: approximate an expensive-predicate selection on a small
//! hand-built table.
//!
//! ```text
//! cargo run --release --example quickstart [-- --parallel | --pool]
//! ```
//!
//! The query is the paper's running example: `SELECT * FROM R WHERE
//! f(ID) = 1` with three groups of customers whose attribute `A`
//! correlates with the (expensive) credit check `f`. We ask for 90%
//! precision and recall with 90% confidence, and compare the cost against
//! evaluating the UDF on every tuple. With `--parallel`, UDF probes run
//! through the `expred-exec` parallel backend — same answer and same
//! bill, batched across worker threads.

use expred::cli::ExampleCli;
use expred::core::{
    execute_plan_with, sample_groups_with, solve_estimated, truth_vector, CorrelationModel,
    QuerySpec, SampleSizeRule,
};
use expred::ml::metrics::precision_recall;
use expred::stats::Prng;
use expred::table::{DataType, Field, Schema, Table, Value};
use expred::udf::{CostModel, OracleUdf, UdfInvoker};

fn main() {
    let backend = ExampleCli::new(
        "quickstart",
        "the paper's running example: approximate an expensive-predicate selection",
    )
    .parse_backend();
    println!("{}", backend.banner());
    let executor = backend.executor();
    // Build the example relation: 3000 tuples, attribute A in {1,2,3} with
    // selectivities 0.9 / 0.5 / 0.1 for the hidden predicate.
    let schema = Schema::new(vec![
        Field::new("a", DataType::Int),
        Field::new("good_credit", DataType::Bool),
    ]);
    let mut table = Table::empty(schema);
    let mut rng = Prng::seeded(1);
    for (a, sel) in [(1i64, 0.9f64), (2, 0.5), (3, 0.1)] {
        for _ in 0..1000 {
            let label = rng.bernoulli(sel);
            table
                .push_row(vec![Value::Int(a), Value::Bool(label)])
                .unwrap();
        }
    }

    // The expensive UDF: a credit check, modelled by the hidden column and
    // audited by the invoker (every retrieval and evaluation is charged).
    let udf = OracleUdf::new("good_credit");
    let invoker = UdfInvoker::new(&udf, &table);
    let spec =
        QuerySpec::try_new(0.9, 0.9, 0.9, CostModel::PAPER_DEFAULT).expect("contract in range");

    // Step 1 — estimate correlations: group by A and sample 5%.
    let groups = table.group_by("a").expect("column a exists");
    let sample = sample_groups_with(
        &groups,
        &invoker,
        SampleSizeRule::Fraction(0.05),
        &mut rng,
        executor.as_ref(),
    );
    for (g, key, _) in groups.iter() {
        println!(
            "group A={key}: sampled {} tuples, estimated selectivity {:.2}",
            sample.evaluated[g],
            sample.estimates[g].mean()
        );
    }

    // Step 2 — optimize and execute.
    let est = sample.to_estimated_groups(&groups);
    let plan = solve_estimated(&est, &spec, CorrelationModel::Independent)
        .expect("constraints are satisfiable");
    for (g, key, _) in groups.iter() {
        println!(
            "plan for A={key}: retrieve {:.2}, evaluate {:.2}",
            plan.r()[g],
            plan.e()[g]
        );
    }
    let result = execute_plan_with(&plan, &groups, &invoker, &mut rng, executor.as_ref());

    // Report: achieved accuracy and cost vs the evaluate-everything bound.
    let truth = truth_vector(&table, "good_credit");
    let returned: Vec<usize> = result.returned.iter().map(|&r| r as usize).collect();
    let summary = precision_recall(&returned, &truth);
    let counts = invoker.counts();
    println!(
        "\nreturned {} tuples: precision {:.3}, recall {:.3}",
        summary.returned, summary.precision, summary.recall
    );
    println!(
        "UDF evaluations: {} (evaluating everything would need {})",
        counts.evaluated,
        table.num_rows()
    );
    println!("bill breakdown: {counts}");
    println!(
        "total cost: {} (vs {} for evaluate-everything)",
        counts.cost(&spec.cost),
        CostModel::PAPER_DEFAULT.total(table.num_rows() as u64, table.num_rows() as u64)
    );
}
