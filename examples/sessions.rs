//! Sessions: many queries, one cache — the second query is (nearly) free.
//!
//! ```text
//! cargo run --release --example sessions [-- --parallel | --pool]
//! ```
//!
//! A `QueryEngine` owns an executor backend and a cross-query
//! `CacheStore`. This demo serves four *requests* — the composable,
//! fallible [`QueryRequest`] surface — against one Prosper-like dataset
//! and prints each bill, broken out into fresh evaluations (paid `o_e`),
//! within-query memo hits, and cross-query reuse (paid by an *earlier*
//! query):
//!
//! 1. an Intel-Sample request — pays full freight;
//! 2. the identical request again — answered from the result memo,
//!    charging zero additional `o_e`;
//! 3. the same contract under a different seed — overlapping rows arrive
//!    as reuse;
//! 4. a Naive request over the same table — its β-fraction is largely
//!    pre-paid.
//!
//! Bad input never panics the engine: the demo closes by submitting a
//! request for a predictor column the table does not have and printing
//! the typed `EngineError` it gets back.

use expred::cli::ExampleCli;
use expred::core::{IntelSampleConfig, PredictorChoice, QueryRequest, QuerySpec, RunOutcome};
use expred::table::datasets::{Dataset, DatasetSpec, PROSPER};

fn report(label: &str, out: &RunOutcome) {
    println!(
        "{label}\n  answer: {} tuples (precision {:.3}, recall {:.3}), cost {}\n  bill:   {}",
        out.returned.len(),
        out.summary.precision,
        out.summary.recall,
        out.cost,
        out.counts,
    );
}

fn main() {
    let backend = ExampleCli::new(
        "sessions",
        "one QueryEngine session serving several requests against one cache",
    )
    .parse_backend();
    println!("{}", backend.banner());
    let engine = backend.engine();
    let ds = Dataset::generate(
        DatasetSpec {
            rows: 10_000,
            ..PROSPER
        },
        3,
    );
    let intel = QueryRequest::intel_sample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
        "grade".into(),
    )))
    .with_seed(42);

    let first = engine.submit(&ds, &intel).expect("valid request");
    report("query 1: intel-sample, cold session", &first);

    let repeat = engine.submit(&ds, &intel).expect("valid request");
    report("query 2: the identical request", &repeat);
    println!(
        "  -> served from the result memo; session evaluations still {}",
        engine.session_counts().evaluated
    );

    let reseeded = engine
        .submit(&ds, &intel.clone().with_seed(43))
        .expect("valid request");
    report("query 3: same contract, new seed", &reseeded);

    let naive = engine
        .submit(
            &ds,
            &QueryRequest::naive(QuerySpec::paper_default()).with_seed(7),
        )
        .expect("valid request");
    report("query 4: naive over the warmed table", &naive);

    // Invalid input is a typed error, not a worker-killing panic.
    let bad = QueryRequest::optimal(QuerySpec::paper_default(), "no_such_column");
    match engine.submit(&ds, &bad) {
        Ok(_) => unreachable!("the column does not exist"),
        Err(err) => println!("\nquery 5: rejected as expected -> {err}"),
    }

    println!("\nsession totals: {}", engine.session_counts());
    println!("row cache:      {:?}", engine.cache_stats());
    println!("engine:         {:?}", engine.stats());
}
