//! Sessions: many queries, one cache — the second query is (nearly) free.
//!
//! ```text
//! cargo run --release --example sessions [-- --parallel | --pool]
//! ```
//!
//! A `QueryEngine` owns an executor backend and a cross-query
//! `CacheStore`. This demo serves four requests against one Prosper-like
//! dataset and prints each bill, broken out into fresh evaluations (paid
//! `o_e`), within-query memo hits, and cross-query reuse (paid by an
//! *earlier* query):
//!
//! 1. an Intel-Sample query — pays full freight;
//! 2. the identical request again — answered from the result memo,
//!    charging zero additional `o_e`;
//! 3. the same contract under a different seed — overlapping rows arrive
//!    as reuse;
//! 4. a Naive query over the same table — its β-fraction is largely
//!    pre-paid.

use expred::core::{IntelSampleConfig, PredictorChoice, Query, QueryEngine, QuerySpec, RunOutcome};
use expred::exec::{Parallel, WorkerPool};
use expred::table::datasets::{Dataset, DatasetSpec, PROSPER};

fn report(label: &str, out: &RunOutcome) {
    println!(
        "{label}\n  answer: {} tuples (precision {:.3}, recall {:.3}), cost {}\n  bill:   {}",
        out.returned.len(),
        out.summary.precision,
        out.summary.recall,
        out.cost,
        out.counts,
    );
}

fn main() {
    let engine = if std::env::args().any(|a| a == "--pool") {
        let backend = WorkerPool::new();
        println!(
            "engine backend: worker_pool ({} persistent workers)",
            backend.threads()
        );
        QueryEngine::with_executor(Box::new(backend))
    } else if std::env::args().any(|a| a == "--parallel") {
        let backend = Parallel::new();
        println!("engine backend: parallel ({} threads)", backend.threads());
        QueryEngine::with_executor(Box::new(backend))
    } else {
        println!("engine backend: sequential (pass --parallel or --pool to fan out)");
        QueryEngine::new()
    };
    let ds = Dataset::generate(
        DatasetSpec {
            rows: 10_000,
            ..PROSPER
        },
        3,
    );
    let intel = Query::IntelSample(IntelSampleConfig::experiment1(PredictorChoice::Fixed(
        "grade".into(),
    )));

    let first = engine.run(&ds, &intel, 42);
    report("query 1: intel-sample, cold session", &first);

    let repeat = engine.run(&ds, &intel, 42);
    report("query 2: the identical request", &repeat);
    println!(
        "  -> served from the result memo; session evaluations still {}",
        engine.session_counts().evaluated
    );

    let reseeded = engine.run(&ds, &intel, 43);
    report("query 3: same contract, new seed", &reseeded);

    let naive = engine.run(&ds, &Query::Naive(QuerySpec::paper_default()), 7);
    report("query 4: naive over the warmed table", &naive);

    println!("\nsession totals: {}", engine.session_counts());
    println!("row cache:      {:?}", engine.cache_stats());
    println!("engine:         {:?}", engine.stats());
}
