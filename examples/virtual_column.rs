//! The ML virtual column (§4.4 / §6.3.2): when no single column predicts
//! the UDF well, learn one.
//!
//! ```text
//! cargo run --release --example virtual_column
//! ```
//!
//! On the Bank-Marketing clone (the paper's hardest dataset: selectivity
//! 0.11), we label 1% of the tuples, train a logistic regressor, bucketize
//! its scores into a 10-valued *virtual* column, and compare the resulting
//! plan against the fixed real predictor.

use expred::cli::ExampleCli;
use expred::core::{run_intel_sample, truth_vector, IntelSampleConfig, PredictorChoice};
use expred::table::datasets::{Dataset, LABEL_COLUMN, MARKETING};

fn main() {
    ExampleCli::without_backend_flags(
        "virtual_column",
        "learn a virtual predictor column when no real column predicts the UDF",
    )
    .parse_backend();
    let ds = Dataset::generate(MARKETING, 99);
    println!(
        "dataset: {} ({} rows, selectivity {:.2})",
        ds.spec.name,
        ds.table.num_rows(),
        ds.group_stats(ds.predictor()).overall_selectivity
    );

    let fixed_cfg =
        IntelSampleConfig::experiment1(PredictorChoice::Fixed(ds.predictor().to_owned()));
    let virtual_cfg = IntelSampleConfig::experiment1(PredictorChoice::Virtual {
        buckets: 10,
        label_fraction: 0.01,
    });

    let fixed = run_intel_sample(&ds, &fixed_cfg, 5);
    let virt = run_intel_sample(&ds, &virtual_cfg, 5);

    println!(
        "\n{:<22} {:>12} {:>10} {:>10}",
        "predictor", "evaluations", "precision", "recall"
    );
    for (name, out) in [
        (format!("fixed ({})", ds.predictor()), &fixed),
        ("virtual (logistic)".to_owned(), &virt),
    ] {
        println!(
            "{:<22} {:>12} {:>10.3} {:>10.3}",
            name, out.counts.evaluated, out.summary.precision, out.summary.recall
        );
    }

    // Show what the virtual column looks like: per-bucket selectivity.
    // (Uses ground truth; evaluation-side illustration only.)
    let truth = truth_vector(&ds.table, LABEL_COLUMN);
    let udf = expred::udf::OracleUdf::new(LABEL_COLUMN);
    let invoker = expred::udf::UdfInvoker::new(&udf, &ds.table);
    let mut rng = expred::stats::Prng::seeded(5);
    let n = ds.table.num_rows();
    let labelled: Vec<u32> = rng
        .sample_indices(n, n / 100)
        .into_iter()
        .map(|r| {
            invoker.retrieve_and_evaluate(r);
            r as u32
        })
        .collect();
    let groups = expred::core::column_select::virtual_column(
        &ds.table,
        &[LABEL_COLUMN, "row_id"],
        &invoker,
        &labelled,
        10,
        &expred::exec::ExecContext::sequential(),
    );
    println!("\nvirtual-column buckets (score-ordered):");
    for (g, _, rows) in groups.iter() {
        let sel = rows.iter().filter(|&&r| truth[r as usize]).count() as f64 / rows.len() as f64;
        let bar = "#".repeat((sel * 40.0).round() as usize);
        println!(
            "bucket {g:>2}: {:>6} rows, selectivity {sel:>5.2} {bar}",
            rows.len()
        );
    }
}
