//! Credit screening at scale: the paper's Lending-Club scenario.
//!
//! ```text
//! cargo run --release --example credit_screening
//! ```
//!
//! A marketing team wants every customer a (paid, external) credit check
//! would approve, tolerating 80% precision/recall. We run the three §6.2
//! contestants on the calibrated Lending-Club clone and then show the §5
//! budget extension: how much recall a fixed spend buys.

use expred::cli::ExampleCli;
use expred::core::extensions::maximize_recall_under_budget;
use expred::core::{IntelSampleConfig, PredictorChoice, QueryEngine, QueryRequest, QuerySpec};
use expred::table::datasets::{Dataset, LENDING_CLUB};
use expred::udf::CostModel;

fn main() {
    ExampleCli::without_backend_flags(
        "credit_screening",
        "the paper's Lending-Club scenario: three contestants + the budget extension",
    )
    .parse_backend();
    let ds = Dataset::generate(LENDING_CLUB, 2026);
    let spec = QuerySpec::paper_default();
    println!(
        "dataset: {} ({} loans, overall approval rate {:.2})",
        ds.spec.name,
        ds.table.num_rows(),
        ds.group_stats(ds.predictor()).overall_selectivity
    );

    // The three contestants of Experiment 1, each on its own engine
    // session so none reuses rows another already paid for.
    let submit = |req: QueryRequest| match QueryEngine::new().submit(&ds, &req.with_seed(1)) {
        Ok(outcome) => outcome,
        Err(err) => {
            eprintln!("query failed: {err}");
            std::process::exit(1);
        }
    };
    let naive = submit(QueryRequest::naive(spec));
    let intel = submit(QueryRequest::intel_sample(IntelSampleConfig::experiment1(
        PredictorChoice::Auto {
            label_fraction: 0.01,
        },
    )));
    let optimal = submit(QueryRequest::optimal(spec, ds.predictor()));
    println!(
        "\n{:<14} {:>12} {:>10} {:>10} {:>8}",
        "strategy", "evaluations", "precision", "recall", "cost"
    );
    for (name, out) in [
        ("naive", &naive),
        ("intel-sample", &intel),
        ("optimal", &optimal),
    ] {
        println!(
            "{:<14} {:>12} {:>10.3} {:>10.3} {:>8.0}",
            name, out.counts.evaluated, out.summary.precision, out.summary.recall, out.cost
        );
    }
    println!(
        "\nintel-sample saves {:.0}% of the credit-check calls vs naive",
        100.0 * (1.0 - intel.counts.evaluated as f64 / naive.counts.evaluated as f64)
    );

    // Budget extension: recall purchasable per spend level.
    let stats = ds.group_stats(ds.predictor());
    let sizes: Vec<f64> = stats.per_group.iter().map(|&(t, _)| t as f64).collect();
    let sels: Vec<f64> = stats.per_group.iter().map(|&(_, s)| s).collect();
    println!("\nbudgeted variant (max recall s.t. cost <= budget, alpha = 0.8):");
    println!(
        "{:>10} {:>14} {:>14}",
        "budget", "recall bound", "expected cost"
    );
    for budget in [10_000.0, 25_000.0, 50_000.0, 100_000.0, 200_000.0] {
        match maximize_recall_under_budget(
            &sizes,
            &sels,
            spec.alpha,
            spec.rho,
            CostModel::PAPER_DEFAULT,
            budget,
        ) {
            Some(out) => println!(
                "{:>10.0} {:>14.3} {:>14.0}",
                budget, out.achieved_beta, out.expected_cost
            ),
            None => println!("{budget:>10.0} {:>14} {:>14}", "-", "unaffordable"),
        }
    }
}
